#include "core/optimal_mix.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace themis {

namespace {

/** Per-byte N*B load each dimension absorbs for one RS order. */
std::vector<double>
orderLoads(const LatencyModel& model, CollectiveType type,
           const std::vector<int>& order)
{
    std::vector<int> reversed(order.rbegin(), order.rend());
    std::vector<StageAssignment> stages;
    switch (type) {
      case CollectiveType::AllReduce:
        stages = makeStages(type, order, reversed);
        break;
      case CollectiveType::ReduceScatter:
      case CollectiveType::AllToAll:
        stages = makeStages(type, order, {});
        break;
      case CollectiveType::AllGather:
        stages = makeStages(type, {}, reversed);
        break;
    }
    return model.stageLoads(1.0, stages);
}

} // namespace

OptimalMixResult
optimalStaticMix(const LatencyModel& model, CollectiveType type,
                 int iterations)
{
    THEMIS_ASSERT(iterations > 0, "need at least one iteration");
    const int d = model.numDims();

    OptimalMixResult result;
    std::vector<int> order(static_cast<std::size_t>(d));
    std::iota(order.begin(), order.end(), 0);
    std::vector<std::vector<double>> loads; // per order, per dim
    do {
        result.orders.push_back(order);
        loads.push_back(orderLoads(model, type, order));
    } while (std::next_permutation(order.begin(), order.end()));
    const std::size_t n = result.orders.size();

    // Scale loads so the multiplicative-weights payoffs are in [0,1].
    double max_load = 0.0;
    for (const auto& l : loads)
        for (double v : l)
            max_load = std::max(max_load, v);
    THEMIS_ASSERT(max_load > 0.0, "degenerate load matrix");

    // Multiplicative weights on the dimensions (the "max" player);
    // the mix player best-responds with the cheapest order under the
    // current weights. The averaged best responses converge to the
    // optimal mix; the averaged weighted costs give a dual bound.
    std::vector<double> weights(static_cast<std::size_t>(d),
                                1.0 / static_cast<double>(d));
    std::vector<double> counts(n, 0.0);
    const double eta =
        std::sqrt(std::log(static_cast<double>(d)) /
                  static_cast<double>(iterations));
    double dual_sum = 0.0;

    for (int it = 0; it < iterations; ++it) {
        // Best response: order minimizing the weighted load.
        std::size_t best = 0;
        double best_cost = 0.0;
        for (std::size_t o = 0; o < n; ++o) {
            double cost = 0.0;
            for (int k = 0; k < d; ++k) {
                cost += weights[static_cast<std::size_t>(k)] *
                        loads[o][static_cast<std::size_t>(k)];
            }
            if (o == 0 || cost < best_cost) {
                best = o;
                best_cost = cost;
            }
        }
        counts[best] += 1.0;
        dual_sum += best_cost;

        // Weight update toward the heavier dimensions.
        double norm = 0.0;
        for (int k = 0; k < d; ++k) {
            auto& w = weights[static_cast<std::size_t>(k)];
            w *= std::exp(eta * loads[best][static_cast<std::size_t>(k)] /
                          max_load);
            norm += w;
        }
        for (auto& w : weights)
            w /= norm;
    }

    result.mix.assign(n, 0.0);
    for (std::size_t o = 0; o < n; ++o)
        result.mix[o] = counts[o] / static_cast<double>(iterations);

    result.per_dim_load.assign(static_cast<std::size_t>(d), 0.0);
    for (std::size_t o = 0; o < n; ++o) {
        for (int k = 0; k < d; ++k) {
            result.per_dim_load[static_cast<std::size_t>(k)] +=
                result.mix[o] * loads[o][static_cast<std::size_t>(k)];
        }
    }
    result.balanced_load = *std::max_element(
        result.per_dim_load.begin(), result.per_dim_load.end());
    result.dual_bound = dual_sum / static_cast<double>(iterations);
    return result;
}

} // namespace themis
