#include "core/priority_policy.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace themis {

std::string
priorityTierName(int tier)
{
    switch (tier) {
      case static_cast<int>(PriorityTier::Bulk): return "bulk";
      case static_cast<int>(PriorityTier::Standard): return "standard";
      case static_cast<int>(PriorityTier::Urgent): return "urgent";
      default: break;
    }
    std::ostringstream out;
    out << "class" << tier;
    return out.str();
}

PriorityPolicy
PriorityPolicy::uniform()
{
    return PriorityPolicy{};
}

PriorityPolicy
PriorityPolicy::tiered(double ratio)
{
    THEMIS_ASSERT(ratio >= 1.0,
                  "priority weight ratio must be >= 1, got " << ratio);
    PriorityPolicy p;
    p.uniform_ = false;
    double w = 1.0;
    for (int t = 0; t < kNumPriorityTiers; ++t) {
        p.weights_[static_cast<std::size_t>(t)] = w;
        w *= ratio;
    }
    return p;
}

PriorityPolicy
PriorityPolicy::custom(
    const std::array<double, kNumPriorityTiers>& weights)
{
    PriorityPolicy p;
    p.uniform_ = false;
    for (double w : weights)
        THEMIS_ASSERT(w > 0.0, "flow weight must be positive, got " << w);
    p.weights_ = weights;
    return p;
}

FlowClass
PriorityPolicy::flowFor(int tier) const
{
    if (uniform_)
        return FlowClass{0, 1.0};
    int t = tier;
    if (t < 0)
        t = 0;
    if (t >= kNumPriorityTiers)
        t = kNumPriorityTiers - 1;
    return FlowClass{t, weights_[static_cast<std::size_t>(t)]};
}

std::uint64_t
PriorityPolicy::fingerprint() const
{
    // Uniform policies collapse every tier to {0, 1.0}; one shared
    // fingerprint keeps their plan-cache keys identical no matter how
    // the policy object was constructed.
    Fnv1a h;
    h.mix(static_cast<std::uint64_t>(uniform_));
    if (!uniform_)
        for (double w : weights_)
            h.mix(w);
    return h.value();
}

std::string
PriorityPolicy::describe() const
{
    if (uniform_)
        return "uniform (priorities off)";
    std::ostringstream out;
    out << "tiered (";
    for (int t = 0; t < kNumPriorityTiers; ++t) {
        if (t > 0)
            out << ", ";
        out << priorityTierName(t) << "=x"
            << weights_[static_cast<std::size_t>(t)];
    }
    out << ")";
    return out.str();
}

} // namespace themis
