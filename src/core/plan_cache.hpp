/**
 * @file
 * Memoization of scheduler output across collectives and sweep cells.
 *
 * A chunk-schedule plan is a pure function of (scheduler + its
 * configuration, collective type, size, chunk count, latency model):
 * the Themis scheduler resets its load tracker per collective
 * (Algorithm 1), so two identical requests always yield bit-identical
 * `ChunkSchedule`s. Training loops re-issue identical collectives per
 * layer and per iteration, and design-space sweeps re-issue them per
 * cell, so the runtime re-derived the same plans thousands of times.
 * This cache keys plans by exactly the inputs above — the latency
 * model is represented by a fingerprint hash of every dimension's
 * parameters (LatencyModel::fingerprint()), which makes keys sound
 * across topologies, scopes and sweep axes that do not affect the
 * plan.
 *
 * Enforced per-dimension start orders (Sec 4.6.2) are memoized too:
 * they are a pure function of the plan plus the intra-dimension
 * policy, admission configuration and planner kind, and deriving them
 * costs a full shadow simulation per collective.
 *
 * Chunk-op *step plans* are memoized as well: the lumped
 * (fixed delay, wire bytes) aggregate of one phase of one chunk on
 * one dimension is a pure function of (phase, entering bytes,
 * dimension parameters), and sessions re-derive it per stage per
 * iteration. Keys use LatencyModel::dimFingerprint(), so the memo is
 * shared across scopes and sweep cells that touch the same physical
 * dimension. Step plans are history-free, so even the carry-load
 * Themis configuration (whose chunk *schedules* bypass the cache)
 * uses this memo.
 *
 * The cache is thread-safe and read-mostly: one instance is shared
 * across sweep workers (std::shared_mutex; lookups take the shared
 * lock). Values are immutable shared_ptrs, so a worker can keep using
 * a plan while others insert. The only caching-unsound configuration
 * — a Themis scheduler carrying load state across collectives — is
 * rejected by the runtime (it bypasses the cache).
 */

#ifndef THEMIS_CORE_PLAN_CACHE_HPP
#define THEMIS_CORE_PLAN_CACHE_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "core/chunk.hpp"
#include "core/consistency_planner.hpp"
#include "core/intra_dim_policy.hpp"
#include "core/scheduler.hpp"

namespace themis {

/** Everything a chunk-schedule plan depends on. */
struct PlanKey
{
    SchedulerKind scheduler = SchedulerKind::Baseline;

    /** Scheduler tunables; normalized to defaults for schedulers that
     *  ignore them so equivalent requests share one entry. */
    ThemisConfig themis{};

    CollectiveType type = CollectiveType::AllReduce;
    Bytes size = 0.0;
    int chunks = 0;

    /** LatencyModel::fingerprint() of the collective's scope. */
    std::uint64_t model_fingerprint = 0;

    /**
     * Priority component: the urgent threshold-bypass bit derived
     * from the request's flow tier, plus PriorityPolicy::fingerprint()
     * of the active policy. Only the priority-aware Themis variant
     * reads priorities when planning, so make() normalizes both to
     * zero for every other scheduler, and normalizes the tier to the
     * bypass bit for ThemisPriority (equivalent requests share one
     * entry).
     */
    int flow_tier = 0;
    std::uint64_t priority_fingerprint = 0;

    /**
     * Capacity-epoch fingerprint of the runtime's fault-adaptation
     * state (CommRuntime::capacityFingerprint()): 0 on a clean fabric,
     * a hash of the per-dim planning factors once adaptation has
     * re-planned against degraded bandwidth. Keeps degraded plans
     * cached separately from clean ones even if a scaled model's
     * fingerprint were to collide with another clean model sharing
     * the cache.
     */
    std::uint64_t capacity_fingerprint = 0;

    /** Build a key, normalizing scheduler-ignored fields. */
    static PlanKey make(SchedulerKind scheduler,
                        const ThemisConfig& themis, CollectiveType type,
                        Bytes size, int chunks,
                        std::uint64_t model_fingerprint,
                        int flow_tier = 0,
                        std::uint64_t priority_fingerprint = 0,
                        std::uint64_t capacity_fingerprint = 0);

    bool operator==(const PlanKey& o) const;
};

/**
 * 64-bit FNV-1a hash of a PlanKey (the cache's own key hash). Also
 * mixed into iteration fingerprints: the key captures everything a
 * collective's plan depends on, so hashing the keys an iteration
 * issued is the plan-level component of steady-state detection.
 */
std::uint64_t planKeyHash(const PlanKey& key);

/** Everything an enforced-order plan depends on beyond the PlanKey. */
struct OrderKey
{
    PlanKey plan;
    IntraDimPolicy intra_policy = IntraDimPolicy::Fifo;

    /** runtime::OrderPlanner as an int (core cannot see runtime). */
    int planner = 0;

    /** AdmissionConfig fields (engine timing affects shadow orders). */
    int max_parallel_ops = 0;
    double latency_headroom = 0.0;

    bool operator==(const OrderKey& o) const;
};

/** Everything one chunk-op step plan depends on. */
struct StepKey
{
    Phase phase = Phase::ReduceScatter;

    /** Per-NPU data size entering the stage (bit-pattern compared). */
    Bytes entering = 0.0;

    /** LatencyModel::dimFingerprint() of the stage's dimension. */
    std::uint64_t dim_fingerprint = 0;

    bool operator==(const StepKey& o) const;
};

/** Memoized lumped step aggregates (runtime/chunk_op.cpp derivation). */
struct StepSummary
{
    /** Sum of step latencies (A). */
    TimeNs fixed_delay = 0.0;

    /** Total wire volume (N). */
    Bytes total_bytes = 0.0;
};

/** Shared, read-mostly plan memoization; see file comment. */
class PlanCache
{
  public:
    using PlanPtr = std::shared_ptr<const std::vector<ChunkSchedule>>;
    using OrderPtr =
        std::shared_ptr<const std::vector<std::vector<OpKey>>>;

    /** Cache effectiveness counters (monotonic, thread-safe). */
    struct Stats
    {
        std::uint64_t plan_hits = 0;
        std::uint64_t plan_misses = 0;
        std::uint64_t order_hits = 0;
        std::uint64_t order_misses = 0;
        std::uint64_t step_hits = 0;
        std::uint64_t step_misses = 0;
    };

    PlanCache() = default;
    PlanCache(const PlanCache&) = delete;
    PlanCache& operator=(const PlanCache&) = delete;

    /** Cached plan for @p key, or nullptr (counts a hit/miss). */
    PlanPtr findPlan(const PlanKey& key) const;

    /**
     * Store @p plan under @p key and return the cached value. If a
     * concurrent worker won the race, its (identical) plan wins and
     * @p plan is discarded.
     */
    PlanPtr storePlan(const PlanKey& key,
                      std::vector<ChunkSchedule> plan);

    /** Cached enforced orders for @p key, or nullptr. */
    OrderPtr findOrders(const OrderKey& key) const;

    /** Store enforced orders; first writer wins (values identical). */
    OrderPtr storeOrders(const OrderKey& key,
                         std::vector<std::vector<OpKey>> orders);

    /**
     * Cached step plan for @p key; false leaves @p out untouched
     * (counts a hit/miss).
     */
    bool findStep(const StepKey& key, StepSummary& out) const;

    /** Store a step plan; first writer wins (values identical). */
    void storeStep(const StepKey& key, const StepSummary& summary);

    /** Distinct plans currently cached. */
    std::size_t planCount() const;

    /** Distinct order plans currently cached. */
    std::size_t orderCount() const;

    /** Distinct step plans currently cached. */
    std::size_t stepCount() const;

    Stats stats() const;

  private:
    struct PlanKeyHash
    {
        std::size_t operator()(const PlanKey& k) const;
    };

    struct OrderKeyHash
    {
        std::size_t operator()(const OrderKey& k) const;
    };

    struct StepKeyHash
    {
        std::size_t operator()(const StepKey& k) const;
    };

    mutable std::shared_mutex mutex_;
    std::unordered_map<PlanKey, PlanPtr, PlanKeyHash> plans_;
    std::unordered_map<OrderKey, OrderPtr, OrderKeyHash> orders_;
    std::unordered_map<StepKey, StepSummary, StepKeyHash> steps_;
    mutable std::atomic<std::uint64_t> plan_hits_{0};
    mutable std::atomic<std::uint64_t> plan_misses_{0};
    mutable std::atomic<std::uint64_t> order_hits_{0};
    mutable std::atomic<std::uint64_t> order_misses_{0};
    mutable std::atomic<std::uint64_t> step_hits_{0};
    mutable std::atomic<std::uint64_t> step_misses_{0};
};

} // namespace themis

#endif // THEMIS_CORE_PLAN_CACHE_HPP
