/**
 * @file
 * The Latency Model component of Themis (paper Fig 6).
 *
 * Predicts chunk-operation runtimes on every network dimension from
 * the dimension's topology-aware algorithm (Table 1) and the cost
 * model A_K + N_K * B_K (Sec 4.4). Both the scheduler (to balance
 * loads) and the consistency planner (to pre-order chunk operations)
 * consume these predictions. A_K and B_K derive from the system
 * specification, so every NPU reproduces identical predictions —
 * the basis of inter-dimension schedule consistency (Sec 4.6.1).
 */

#ifndef THEMIS_CORE_LATENCY_MODEL_HPP
#define THEMIS_CORE_LATENCY_MODEL_HPP

#include <cstdint>
#include <vector>

#include "collective/cost_model.hpp"
#include "core/chunk.hpp"
#include "topology/topology.hpp"

namespace themis {

/**
 * Latency predictions over the dimensions a collective spans.
 * Constructed per collective scope; indices are local (0-based).
 */
class LatencyModel
{
  public:
    /** @param dims participating dimensions, in dim order. */
    explicit LatencyModel(std::vector<DimensionConfig> dims);

    /** Build from a whole topology (all dimensions participate). */
    static LatencyModel fromTopology(const Topology& topo);

    /**
     * Build for a scope (empty = all dimensions, fully). Partial
     * participation overrides the peer-group size while keeping the
     * dimension's bandwidth and latency.
     */
    static LatencyModel fromScope(const Topology& topo,
                                  const std::vector<ScopeDim>& scope);

    /** Number of participating dimensions. */
    int numDims() const { return static_cast<int>(dims_.size()); }

    /** Participating dimension config by local index. */
    const DimensionConfig& dim(int d) const;

    /** All participating dimension configs. */
    const std::vector<DimensionConfig>& dims() const { return dims_; }

    /** Peer-group sizes by local index. */
    const std::vector<int>& dimSizes() const { return sizes_; }

    /**
     * Copy of this model with each dimension's link bandwidth
     * multiplied by @p factors[d] (one positive factor per local
     * dimension). Fault adaptation plans against the degraded fabric
     * by scaling the clean scope model; fingerprints are recomputed,
     * so degraded predictions never alias clean cache entries.
     */
    LatencyModel scaledBy(const std::vector<double>& factors) const;

    /** Serialization-only time N*B of one op (paper lines 28-29). */
    TimeNs transferTime(Phase phase, Bytes entering, int d) const;

    /** Full idle-dimension op time A + N*B. */
    TimeNs opTime(Phase phase, Bytes entering, int d) const;

    /** Fixed delay A_K of a whole collective type on dimension d. */
    TimeNs collectiveFixedDelay(CollectiveType type, int d) const;

    /**
     * Per-dimension N*B loads contributed by a chunk of initial size
     * @p size traversing @p stages (sizes evolve per the size algebra).
     * Result has one entry per participating dimension.
     */
    std::vector<TimeNs>
    stageLoads(Bytes size, const std::vector<StageAssignment>& stages)
        const;

    /**
     * Hash of every parameter a scheduler's predictions depend on
     * (per dimension: wiring kind, effective peer-group size, link
     * bandwidth, links per NPU, step latency, offload flag — exact
     * bit patterns, in dimension order). Two models with equal
     * fingerprints produce identical predictions, making this the
     * topology component of plan-cache keys (core/plan_cache.hpp).
     * Computed once at construction.
     */
    std::uint64_t fingerprint() const { return fingerprint_; }

    /**
     * Per-dimension fingerprint: the hash of exactly dimension @p d's
     * parameters (the lanes the whole-model fingerprint mixes for
     * that dimension). Keys the step-plan memo (core/plan_cache.hpp),
     * which caches per-dimension chunk-op step aggregates across
     * scopes that share a dimension. Computed once at construction.
     */
    std::uint64_t dimFingerprint(int d) const;

  private:
    std::vector<DimensionConfig> dims_;
    std::vector<int> sizes_;
    std::uint64_t fingerprint_ = 0;
    std::vector<std::uint64_t> dim_fingerprints_;
};

} // namespace themis

#endif // THEMIS_CORE_LATENCY_MODEL_HPP
