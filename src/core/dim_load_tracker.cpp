#include "core/dim_load_tracker.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace themis {

DimLoadTracker::DimLoadTracker(const LatencyModel& model)
    : model_(model),
      loads_(static_cast<std::size_t>(model.numDims()), 0.0)
{}

void
DimLoadTracker::reset(CollectiveType type, bool init_with_fixed_delay)
{
    for (int d = 0; d < model_.numDims(); ++d) {
        loads_[static_cast<std::size_t>(d)] =
            init_with_fixed_delay ? model_.collectiveFixedDelay(type, d)
                                  : 0.0;
    }
}

TimeNs
DimLoadTracker::maxLoad() const
{
    return *std::max_element(loads_.begin(), loads_.end());
}

TimeNs
DimLoadTracker::minLoad() const
{
    return *std::min_element(loads_.begin(), loads_.end());
}

int
DimLoadTracker::minLoadDim() const
{
    return static_cast<int>(std::distance(
        loads_.begin(), std::min_element(loads_.begin(), loads_.end())));
}

void
DimLoadTracker::add(const std::vector<TimeNs>& delta)
{
    THEMIS_ASSERT(delta.size() == loads_.size(),
                  "load delta rank mismatch");
    for (std::size_t i = 0; i < loads_.size(); ++i)
        loads_[i] += delta[i];
}

} // namespace themis
