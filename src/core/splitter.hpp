/**
 * @file
 * The Splitter component of Themis (paper Fig 6): divides a collective
 * into equally-sized chunks that the scheduler treats independently.
 */

#ifndef THEMIS_CORE_SPLITTER_HPP
#define THEMIS_CORE_SPLITTER_HPP

#include <vector>

#include "common/units.hpp"

namespace themis {

/**
 * Split a per-NPU collective of @p size bytes into @p chunks equal
 * chunks. Throws ConfigError on non-positive inputs.
 */
std::vector<Bytes> splitCollective(Bytes size, int chunks);

} // namespace themis

#endif // THEMIS_CORE_SPLITTER_HPP
