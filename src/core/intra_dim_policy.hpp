/**
 * @file
 * Intra-dimension chunk ordering policies (paper Sec 4.3).
 *
 * When several chunk operations are queued at one dimension, the
 * policy decides which starts next:
 *
 *  - FIFO: arrival order. Sufficient for baseline scheduling, where
 *    every chunk has the same schedule and hence identical sizes.
 *  - SCF (Smallest-Chunk-First): smaller operations finish sooner and
 *    feed downstream dimensions faster, reducing dimension starvation
 *    under Themis's heterogeneous per-chunk schedules.
 */

#ifndef THEMIS_CORE_INTRA_DIM_POLICY_HPP
#define THEMIS_CORE_INTRA_DIM_POLICY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace themis {

/** Intra-dimension scheduling policy. */
enum class IntraDimPolicy {
    Fifo,
    Scf,
};

/** Policy name ("FIFO"/"SCF"). */
std::string intraDimPolicyName(IntraDimPolicy policy);

/** What the policy sees about one queued chunk operation. */
struct QueuedOpView
{
    /** Monotonic arrival sequence number at this dimension. */
    std::uint64_t arrival_seq = 0;

    /**
     * Predicted service demand of the operation (A + N*B). This is
     * the SCF key: "processing smaller chunks takes a shorter time
     * and allows the chunk to be fed to other dimensions faster"
     * (Sec 4.3) — an All-Gather stage moves (P-1)x its resident
     * shard, so resident size alone would mis-rank RS vs AG ops.
     */
    TimeNs service_time = 0.0;

    /** Chunk id, used as the final deterministic tie-breaker. */
    int chunk_id = 0;

    /**
     * Flow-class tier (core/priority_policy.hpp). Higher tiers are
     * selected first; the configured policy orders *within* a tier.
     * All-equal tiers (the uniform-policy default) reduce to the
     * plain policy order.
     */
    int tier = 0;
};

/**
 * Index (into @p queue) of the operation the policy starts next.
 * Deterministic: ties break by arrival order, then chunk id.
 * @pre queue is non-empty.
 */
std::size_t pickNextOp(IntraDimPolicy policy,
                       const std::vector<QueuedOpView>& queue);

} // namespace themis

#endif // THEMIS_CORE_INTRA_DIM_POLICY_HPP
