#include "core/themis_scheduler.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace themis {

namespace {

/**
 * Dimension indices sorted by load. Ascending ties break toward the
 * lower index (matching the baseline RS order); descending ties break
 * toward the higher index (matching the baseline AG order), so a
 * fully balanced tracker reproduces the baseline schedule exactly.
 */
std::vector<int>
sortedByLoad(const std::vector<TimeNs>& loads, bool ascending)
{
    std::vector<int> idx(loads.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::stable_sort(idx.begin(), idx.end(), [&](int a, int b) {
        const TimeNs la = loads[static_cast<std::size_t>(a)];
        const TimeNs lb = loads[static_cast<std::size_t>(b)];
        if (la != lb)
            return ascending ? la < lb : la > lb;
        return ascending ? a < b : a > b;
    });
    return idx;
}

std::vector<int>
identityOrder(int n)
{
    std::vector<int> idx(static_cast<std::size_t>(n));
    std::iota(idx.begin(), idx.end(), 0);
    return idx;
}

} // namespace

ThemisScheduler::ThemisScheduler(const LatencyModel& model,
                                 ThemisConfig config,
                                 bool priority_aware)
    : model_(model), config_(config), priority_aware_(priority_aware),
      tracker_(model)
{}

std::vector<ChunkSchedule>
ThemisScheduler::scheduleCollective(CollectiveType type, Bytes size,
                                    int chunks, const FlowClass& flow)
{
    // Urgent flows bypass the robustness threshold (Algorithm 1
    // line 19): the fallback exists to avoid oversubscribing
    // low-bandwidth dimensions when the gap is negligible, but an
    // urgent collective's own completion time dominates that concern.
    // The threshold knob is restored afterwards so interleaved tiers
    // see their own behavior.
    const bool bypass =
        priority_aware_ && config_.use_threshold &&
        flow.tier >= static_cast<int>(PriorityTier::Urgent);
    if (!bypass)
        return scheduleCollective(type, size, chunks);
    config_.use_threshold = false;
    auto out = scheduleCollective(type, size, chunks);
    config_.use_threshold = true;
    return out;
}

const std::vector<TimeNs>&
ThemisScheduler::trackedLoads() const
{
    return tracker_.loads();
}

TimeNs
ThemisScheduler::threshold(CollectiveType type, Bytes chunk_size) const
{
    // "The estimated runtime when running an RS/AG of size
    // chunkSize/16 on the dimension with the lowest current load"
    // (paper Sec 5.3).
    const Phase probe = type == CollectiveType::AllGather
                            ? Phase::AllGather
                            : Phase::ReduceScatter;
    const int d = tracker_.minLoadDim();
    return model_.opTime(probe, chunk_size * config_.threshold_fraction,
                         d);
}

std::vector<int>
ThemisScheduler::scheduleChunkPass(CollectiveType type, Bytes chunk_size)
{
    // Lines 18-27 of Algorithm 1.
    const auto& loads = tracker_.loads();
    std::vector<int> order;
    const bool balanced =
        config_.use_threshold &&
        (tracker_.maxLoad() - tracker_.minLoad() <
         threshold(type, chunk_size));
    if (type == CollectiveType::AllToAll) {
        // Order-invariant volume; keep the baseline order.
        order = identityOrder(model_.numDims());
    } else if (balanced) {
        // Lines 19-20: revert to the baseline order (dim1..dimD for
        // RS, dimD..dim1 for AG).
        order = identityOrder(model_.numDims());
        if (type == CollectiveType::AllGather)
            std::reverse(order.begin(), order.end());
    } else {
        // Lines 22-26: ascending loads for RS, descending for AG.
        order = sortedByLoad(
            loads, /*ascending=*/type != CollectiveType::AllGather);
    }

    // Lines 28-30: predict the pass's loads and update the tracker.
    std::vector<StageAssignment> pass;
    if (type == CollectiveType::AllGather) {
        pass = makeStages(CollectiveType::AllGather, {}, order);
    } else if (type == CollectiveType::AllToAll) {
        pass = makeStages(CollectiveType::AllToAll, order, {});
    } else {
        // RS pass (also used while scheduling an All-Reduce chunk).
        pass = makeStages(CollectiveType::ReduceScatter, order, {});
    }
    tracker_.add(model_.stageLoads(chunk_size, pass));
    return order;
}

std::vector<ChunkSchedule>
ThemisScheduler::scheduleCollective(CollectiveType type, Bytes size,
                                    int chunks)
{
    // Algorithm 1, SCHEDULE_COLLECTIVE.
    if (!config_.carry_load_across_collectives || !tracker_valid_) {
        tracker_.reset(type, config_.init_loads_with_fixed_delay);
        tracker_valid_ = true;
    }
    const auto chunk_sizes = splitCollective(size, chunks);

    std::vector<ChunkSchedule> out;
    out.reserve(chunk_sizes.size());
    for (std::size_t i = 0; i < chunk_sizes.size(); ++i) {
        ChunkSchedule sched;
        sched.chunk_id = static_cast<int>(i);
        sched.size = chunk_sizes[i];
        if (type == CollectiveType::AllReduce) {
            // Lines 7-9: schedule the RS pass, mirror it for AG.
            const auto rs =
                scheduleChunkPass(CollectiveType::ReduceScatter,
                                  chunk_sizes[i]);
            std::vector<int> ag(rs.rbegin(), rs.rend());
            if (config_.account_ag_pass) {
                auto ag_stages =
                    makeStages(CollectiveType::AllGather, {}, ag);
                // The AG pass starts from the reduce-scattered size.
                Bytes shard = chunk_sizes[i];
                for (int d = 0; d < model_.numDims(); ++d)
                    shard /= model_.dim(d).size;
                tracker_.add(model_.stageLoads(shard, ag_stages));
            }
            sched.stages = makeStages(type, rs, ag);
        } else {
            const auto order = scheduleChunkPass(type, chunk_sizes[i]);
            if (type == CollectiveType::AllGather)
                sched.stages = makeStages(type, {}, order);
            else
                sched.stages = makeStages(type, order, {});
        }
        out.push_back(std::move(sched));
    }
    return out;
}

} // namespace themis
