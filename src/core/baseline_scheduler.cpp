#include "core/baseline_scheduler.hpp"

namespace themis {

BaselineScheduler::BaselineScheduler(const LatencyModel& model)
    : model_(model)
{}

std::vector<ChunkSchedule>
BaselineScheduler::scheduleCollective(CollectiveType type, Bytes size,
                                      int chunks)
{
    const auto chunk_sizes = splitCollective(size, chunks);
    std::vector<ChunkSchedule> out;
    out.reserve(chunk_sizes.size());
    for (std::size_t i = 0; i < chunk_sizes.size(); ++i) {
        ChunkSchedule sched;
        sched.chunk_id = static_cast<int>(i);
        sched.size = chunk_sizes[i];
        sched.stages = baselineStages(type, model_.numDims());
        out.push_back(std::move(sched));
    }
    return out;
}

} // namespace themis
