/**
 * @file
 * The Dim Load Tracker component of Themis (paper Fig 6).
 *
 * Maintains, per network dimension, the total communication time the
 * chunks scheduled so far will place on it. Reset at every collective
 * (Algorithm 1 line 2) to the dimension's fixed delay A_K for the
 * requested collective type (Sec 4.4), so latency-heavy dimensions
 * start with a handicap that the greedy scheduler works around.
 */

#ifndef THEMIS_CORE_DIM_LOAD_TRACKER_HPP
#define THEMIS_CORE_DIM_LOAD_TRACKER_HPP

#include <vector>

#include "core/latency_model.hpp"

namespace themis {

/** Per-dimension accumulated predicted load, in nanoseconds. */
class DimLoadTracker
{
  public:
    /**
     * @param model latency model over the participating dimensions
     *        (must outlive the tracker)
     */
    explicit DimLoadTracker(const LatencyModel& model);

    /**
     * Reset for a new collective (Algorithm 1 line 2).
     * @param type collective type whose A_K seeds the loads
     * @param init_with_fixed_delay when false, loads start at zero
     *        (kept as an ablation knob; the paper initializes to A_K)
     */
    void reset(CollectiveType type, bool init_with_fixed_delay = true);

    /** Current loads, one per local dimension. */
    const std::vector<TimeNs>& loads() const { return loads_; }

    /** Largest current load. */
    TimeNs maxLoad() const;

    /** Smallest current load. */
    TimeNs minLoad() const;

    /** Index of the dimension with the smallest load (ties: lowest). */
    int minLoadDim() const;

    /** Accumulate @p delta (one entry per dimension) into the loads. */
    void add(const std::vector<TimeNs>& delta);

  private:
    const LatencyModel& model_;
    std::vector<TimeNs> loads_;
};

} // namespace themis

#endif // THEMIS_CORE_DIM_LOAD_TRACKER_HPP
