#include "core/consistency_planner.hpp"

#include <map>
#include <queue>

#include "common/error.hpp"

namespace themis {

namespace {

/** Pre-simulation event: an op arriving at a dim or a dim freeing. */
struct PlanEvent
{
    TimeNs when = 0.0;
    std::uint64_t seq = 0; // deterministic same-time ordering
    int dim = 0;
    bool is_arrival = false;
    OpKey op{};
    Bytes entering = 0.0;
};

struct LaterEvent
{
    bool
    operator()(const PlanEvent& a, const PlanEvent& b) const
    {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    }
};

} // namespace

ConsistencyPlanner::ConsistencyPlanner(const LatencyModel& model,
                                       IntraDimPolicy policy)
    : model_(model), policy_(policy)
{}

ConsistencyPlan
ConsistencyPlanner::plan(const std::vector<ChunkSchedule>& schedules) const
{
    const int dims = model_.numDims();
    ConsistencyPlan result;
    result.order.resize(static_cast<std::size_t>(dims));

    struct QueuedOp
    {
        OpKey key;
        Bytes entering;
        TimeNs service_time;
        std::uint64_t arrival_seq;
    };

    std::priority_queue<PlanEvent, std::vector<PlanEvent>, LaterEvent>
        events;
    std::vector<std::vector<QueuedOp>> queued(
        static_cast<std::size_t>(dims));
    std::vector<bool> busy(static_cast<std::size_t>(dims), false);
    std::uint64_t seq = 0;

    // Initial arrivals: stage 0 of every chunk at t=0 (the collective
    // hands all chunks to the runtime at once).
    for (const auto& sched : schedules) {
        THEMIS_ASSERT(!sched.stages.empty(), "empty chunk schedule");
        PlanEvent ev;
        ev.when = 0.0;
        ev.seq = seq++;
        ev.dim = sched.stages.front().dim;
        ev.is_arrival = true;
        ev.op = OpKey{sched.chunk_id, 0};
        ev.entering = sched.size;
        events.push(ev);
    }

    // chunk_id -> schedule lookup.
    std::map<int, const ChunkSchedule*> by_id;
    for (const auto& sched : schedules)
        by_id[sched.chunk_id] = &sched;

    TimeNs makespan = 0.0;

    auto try_start = [&](int d, TimeNs now) {
        auto& q = queued[static_cast<std::size_t>(d)];
        if (busy[static_cast<std::size_t>(d)] || q.empty())
            return;
        std::vector<QueuedOpView> views;
        views.reserve(q.size());
        for (const auto& op : q) {
            views.push_back(QueuedOpView{op.arrival_seq,
                                         op.service_time,
                                         op.key.chunk_id});
        }
        const std::size_t pick = pickNextOp(policy_, views);
        const QueuedOp chosen = q[pick];
        q.erase(q.begin() + static_cast<long>(pick));
        busy[static_cast<std::size_t>(d)] = true;
        result.order[static_cast<std::size_t>(d)].push_back(chosen.key);

        const ChunkSchedule& sched = *by_id.at(chosen.key.chunk_id);
        const auto& stage = sched.stages[static_cast<std::size_t>(
            chosen.key.stage_index)];
        const TimeNs dur = model_.opTime(stage.phase, chosen.entering, d);
        const TimeNs done = now + dur;
        makespan = done > makespan ? done : makespan;

        // Next stage of the chunk arrives at `done`, *before* the
        // dimension frees: the runtime enqueues the follow-up op in
        // the completion callback, so a same-dimension successor is
        // already queued when the engine refills.
        const int next = chosen.key.stage_index + 1;
        if (next < static_cast<int>(sched.stages.size())) {
            PlanEvent arr;
            arr.when = done;
            arr.seq = seq++;
            arr.dim = sched.stages[static_cast<std::size_t>(next)].dim;
            arr.is_arrival = true;
            arr.op = OpKey{chosen.key.chunk_id, next};
            arr.entering = sizeAfterPhase(
                stage.phase, chosen.entering,
                model_.dim(stage.dim).size);
            events.push(arr);
        }

        // Dimension frees at `done` (after the arrival lands).
        PlanEvent free_ev;
        free_ev.when = done;
        free_ev.seq = seq++;
        free_ev.dim = d;
        free_ev.is_arrival = false;
        events.push(free_ev);
    };

    std::uint64_t arrival_counter = 0;
    while (!events.empty()) {
        const PlanEvent ev = events.top();
        events.pop();
        if (ev.is_arrival) {
            const ChunkSchedule& sched = *by_id.at(ev.op.chunk_id);
            const auto& stage = sched.stages[static_cast<std::size_t>(
                ev.op.stage_index)];
            const TimeNs service =
                model_.opTime(stage.phase, ev.entering, ev.dim);
            queued[static_cast<std::size_t>(ev.dim)].push_back(
                QueuedOp{ev.op, ev.entering, service,
                         arrival_counter++});
        } else {
            busy[static_cast<std::size_t>(ev.dim)] = false;
        }
        try_start(ev.dim, ev.when);
    }

    result.estimated_makespan = makespan;
    return result;
}

bool
planIsDeadlockFree(const std::vector<ChunkSchedule>& schedules,
                   const ConsistencyPlan& plan)
{
    // Build the dependency graph: node = (chunk, stage). Edges:
    //  - chunk order: (c, s) -> (c, s+1)
    //  - dimension order: consecutive ops in each enforced order.
    // Deadlock-free == acyclic == Kahn's algorithm consumes all nodes.
    std::map<std::pair<int, int>, int> indegree;
    std::map<std::pair<int, int>, std::vector<std::pair<int, int>>> out;

    auto node = [](const OpKey& k) {
        return std::make_pair(k.chunk_id, k.stage_index);
    };

    for (const auto& sched : schedules) {
        for (std::size_t s = 0; s < sched.stages.size(); ++s) {
            indegree.emplace(
                std::make_pair(sched.chunk_id, static_cast<int>(s)), 0);
        }
        for (std::size_t s = 0; s + 1 < sched.stages.size(); ++s) {
            auto a = std::make_pair(sched.chunk_id, static_cast<int>(s));
            auto b =
                std::make_pair(sched.chunk_id, static_cast<int>(s) + 1);
            out[a].push_back(b);
            ++indegree[b];
        }
    }
    for (const auto& order : plan.order) {
        for (std::size_t i = 0; i + 1 < order.size(); ++i) {
            auto a = node(order[i]);
            auto b = node(order[i + 1]);
            out[a].push_back(b);
            ++indegree[b];
        }
    }

    std::queue<std::pair<int, int>> ready;
    for (const auto& [n, deg] : indegree) {
        if (deg == 0)
            ready.push(n);
    }
    std::size_t visited = 0;
    while (!ready.empty()) {
        const auto n = ready.front();
        ready.pop();
        ++visited;
        for (const auto& m : out[n]) {
            if (--indegree[m] == 0)
                ready.push(m);
        }
    }
    return visited == indegree.size();
}

} // namespace themis
