/**
 * @file
 * Chunk-schedule consistency (paper Sec 4.6).
 *
 * All NPUs must execute the same order of chunk operations per
 * dimension or collectives can deadlock (Sec 4.6.2): runtime jitter
 * may make chunks available in different orders on different NPUs.
 * Themis therefore *pre-simulates* the execution with the latency
 * model — a fast, deterministic, detail-free simulation — to fix the
 * per-dimension order of chunk operations; at runtime every NPU
 * enforces that order even when a chunk happens to be ready early.
 *
 * The planner reproduces that pre-simulation: serial service per
 * dimension, op duration A + N*B, intra-dimension policy applied to
 * whatever is queued. Its output is consumed by the runtime's
 * DimensionEngine in enforced-order mode; because the planner is a
 * pure function of the (replicated) schedule and latency model, every
 * NPU derives the identical order — restoring deadlock freedom.
 */

#ifndef THEMIS_CORE_CONSISTENCY_PLANNER_HPP
#define THEMIS_CORE_CONSISTENCY_PLANNER_HPP

#include <vector>

#include "core/chunk.hpp"
#include "core/intra_dim_policy.hpp"
#include "core/latency_model.hpp"

namespace themis {

/** Identity of one chunk operation inside one collective. */
struct OpKey
{
    int chunk_id = 0;
    int stage_index = 0;

    bool
    operator==(const OpKey& o) const
    {
        return chunk_id == o.chunk_id && stage_index == o.stage_index;
    }
};

/** Per-dimension total orders of chunk operations. */
struct ConsistencyPlan
{
    /** order[d] = sequence in which dimension d must start its ops. */
    std::vector<std::vector<OpKey>> order;

    /** Estimated makespan of the pre-simulation (diagnostic only). */
    TimeNs estimated_makespan = 0.0;
};

/** Deterministic pre-simulation; see file comment. */
class ConsistencyPlanner
{
  public:
    /**
     * @param model  latency model over the collective's dimensions
     * @param policy intra-dimension policy applied when several ops
     *               are queued at a dimension
     */
    ConsistencyPlanner(const LatencyModel& model, IntraDimPolicy policy);

    /** Compute per-dimension start orders for @p schedules. */
    ConsistencyPlan plan(const std::vector<ChunkSchedule>& schedules)
        const;

  private:
    const LatencyModel& model_;
    IntraDimPolicy policy_;
};

/**
 * Deadlock-freedom check: the per-dimension enforced orders plus each
 * chunk's stage order must form an acyclic dependency graph (an op
 * waits for its chunk predecessor and for its dimension predecessor).
 * Returns true when a valid global execution order exists.
 */
bool planIsDeadlockFree(const std::vector<ChunkSchedule>& schedules,
                        const ConsistencyPlan& plan);

} // namespace themis

#endif // THEMIS_CORE_CONSISTENCY_PLANNER_HPP
