/**
 * @file
 * Priority classes: mapping collectives onto wire-level flow classes.
 *
 * Themis's scheduling decisions (Sec 4.3/4.6) treat every concurrent
 * chunk as an equal peer, yet chunks from different collectives have
 * very different urgency: a blocking tensor/pipeline-parallel
 * all-reduce stalls the training loop the instant it is issued, while
 * a data-parallel gradient all-reduce only gates the iteration end
 * and can soak up leftover bandwidth. Related systems schedule exactly
 * this distinction (CASSINI interleaves competing jobs' communication
 * phases; Metronome schedules periodic traffic with explicit priority
 * awareness).
 *
 * The workload layer tags each collective with a PriorityTier; a
 * PriorityPolicy maps tiers onto FlowClasses — a scheduling class for
 * the dimension engines' ready sets plus a weighted-GPS weight for
 * the shared channels. The default policy is *uniform*: every tier
 * collapses onto one class of weight 1, reproducing the egalitarian
 * pre-priority dataplane bit-for-bit. Priorities are therefore
 * strictly opt-in per runtime configuration.
 */

#ifndef THEMIS_CORE_PRIORITY_POLICY_HPP
#define THEMIS_CORE_PRIORITY_POLICY_HPP

#include <array>
#include <cstdint>
#include <string>

namespace themis {

/** Urgency tag of a collective's traffic (higher = more urgent). */
enum class PriorityTier : int {
    Bulk = 0,     ///< background traffic (DP gradient all-reduce)
    Standard = 1, ///< default / unclassified traffic
    Urgent = 2,   ///< latency-critical TP/pipeline collectives
};

/** Number of distinct priority tiers. */
constexpr int kNumPriorityTiers = 3;

/** Tier name ("bulk"/"standard"/"urgent") for reports. */
std::string priorityTierName(int tier);

/**
 * Wire-level class of one collective's chunk operations, assigned by
 * a PriorityPolicy:
 *
 *  - @p tier keys the dimension engines' ready sets (higher tiers
 *    select first within the intra-dimension policy) and indexes the
 *    shared channels' per-class accounting;
 *  - @p weight is the weighted-GPS share every transfer of the
 *    collective receives on a shared channel;
 *  - @p job identifies the cluster job that issued the collective
 *    (0 when a single workload owns the runtime). Jobs never change
 *    scheduling — only the tier and weight do — but they partition
 *    the wire-level accounting so a multi-job run can prove per-job
 *    byte conservation and report fabric share per tenant.
 */
struct FlowClass
{
    int tier = 0;
    double weight = 1.0;
    int job = 0;

    bool
    operator==(const FlowClass& o) const
    {
        return tier == o.tier && weight == o.weight && job == o.job;
    }
};

/**
 * Channel accounting class of a flow: jobs stride the tier space so
 * one shared channel tracks progressed bytes and busy time per
 * (job, tier) pair with the existing per-class machinery. Job 0 maps
 * tiers onto themselves, so single-workload runs are untouched.
 */
inline int
accountingClass(const FlowClass& flow)
{
    return flow.job * kNumPriorityTiers + flow.tier;
}

/** Job index encoded in a channel accounting class. */
inline int
accountingJob(int cls)
{
    return cls / kNumPriorityTiers;
}

/** Priority tier encoded in a channel accounting class. */
inline int
accountingTier(int cls)
{
    return cls % kNumPriorityTiers;
}

/** Maps collective priority tiers to flow classes; see file comment. */
class PriorityPolicy
{
  public:
    /** Uniform (default): every tier -> class 0, weight 1. */
    PriorityPolicy() = default;

    /** Explicitly-named uniform policy. */
    static PriorityPolicy uniform();

    /**
     * Geometric weight ladder: tier t keeps its identity as the flow
     * class and receives weight ratio^t (ratio >= 1). tiered(1.0)
     * still separates classes for stats/ready-set purposes but all
     * weights are 1.
     */
    static PriorityPolicy tiered(double ratio);

    /** Explicit per-tier weights (all > 0); tiers keep identity. */
    static PriorityPolicy
    custom(const std::array<double, kNumPriorityTiers>& weights);

    /** Flow class for a request tagged @p tier (clamped to range). */
    FlowClass flowFor(int tier) const;
    FlowClass flowFor(PriorityTier tier) const
    {
        return flowFor(static_cast<int>(tier));
    }

    /** True for the uniform (priority-off) policy. */
    bool isUniform() const { return uniform_; }

    /**
     * Hash of the complete tier->class mapping; the priority
     * component of plan-cache keys (core/plan_cache.hpp). Uniform
     * policies share one fingerprint.
     */
    std::uint64_t fingerprint() const;

    /** One-line description for reports. */
    std::string describe() const;

  private:
    bool uniform_ = true;
    std::array<double, kNumPriorityTiers> weights_{1.0, 1.0, 1.0};
};

} // namespace themis

#endif // THEMIS_CORE_PRIORITY_POLICY_HPP
