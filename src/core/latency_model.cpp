#include "core/latency_model.hpp"

#include "common/error.hpp"
#include "common/hash.hpp"

namespace themis {

LatencyModel::LatencyModel(std::vector<DimensionConfig> dims)
    : dims_(std::move(dims))
{
    if (dims_.empty())
        THEMIS_FATAL("latency model needs at least one dimension");
    Fnv1a hash;
    for (const auto& d : dims_) {
        d.validate();
        sizes_.push_back(d.size);
        Fnv1a dim_hash;
        for (Fnv1a* h : {&hash, &dim_hash}) {
            h->mix(static_cast<std::uint64_t>(d.kind));
            h->mix(static_cast<std::uint64_t>(d.size));
            h->mix(d.link_bw_gbps);
            h->mix(static_cast<std::uint64_t>(d.links_per_npu));
            h->mix(d.step_latency_ns);
            h->mix(static_cast<std::uint64_t>(d.in_network_offload));
        }
        dim_fingerprints_.push_back(dim_hash.value());
    }
    fingerprint_ = hash.value();
}

std::uint64_t
LatencyModel::dimFingerprint(int d) const
{
    THEMIS_ASSERT(d >= 0 && d < numDims(), "bad dimension " << d);
    return dim_fingerprints_[static_cast<std::size_t>(d)];
}

LatencyModel
LatencyModel::fromTopology(const Topology& topo)
{
    return LatencyModel(topo.dims());
}

LatencyModel
LatencyModel::fromScope(const Topology& topo,
                        const std::vector<ScopeDim>& scope)
{
    if (scope.empty())
        return fromTopology(topo);
    std::vector<DimensionConfig> dims;
    for (const auto& s : scope) {
        DimensionConfig cfg = topo.dim(s.dim);
        if (s.participants > 0) {
            if (s.participants > cfg.size)
                THEMIS_FATAL("scope wants " << s.participants
                                            << " participants in a dim of "
                                            << cfg.size << " NPUs");
            cfg.size = s.participants;
            // A clique sub-group only needs participants-1 links; the
            // surplus cannot be used within the smaller group.
            if (cfg.kind == DimKind::FullyConnected &&
                cfg.links_per_npu > cfg.size - 1) {
                cfg.links_per_npu = cfg.size - 1;
            }
        }
        dims.push_back(cfg);
    }
    return LatencyModel(std::move(dims));
}

LatencyModel
LatencyModel::scaledBy(const std::vector<double>& factors) const
{
    THEMIS_ASSERT(factors.size() == dims_.size(),
                  "scaledBy wants one factor per dimension, got "
                      << factors.size() << " for " << dims_.size());
    std::vector<DimensionConfig> dims = dims_;
    for (std::size_t d = 0; d < dims.size(); ++d) {
        THEMIS_ASSERT(factors[d] > 0.0,
                      "scaledBy factor " << factors[d] << " on dim "
                                         << d << " must be positive");
        dims[d].link_bw_gbps *= factors[d];
    }
    return LatencyModel(std::move(dims));
}

const DimensionConfig&
LatencyModel::dim(int d) const
{
    THEMIS_ASSERT(d >= 0 && d < numDims(), "bad local dimension " << d);
    return dims_[static_cast<std::size_t>(d)];
}

TimeNs
LatencyModel::transferTime(Phase phase, Bytes entering, int d) const
{
    return chunkTransferTime(phase, entering, dim(d));
}

TimeNs
LatencyModel::opTime(Phase phase, Bytes entering, int d) const
{
    return chunkOpTime(phase, entering, dim(d));
}

TimeNs
LatencyModel::collectiveFixedDelay(CollectiveType type, int d) const
{
    return typeFixedDelay(type, dim(d));
}

std::vector<TimeNs>
LatencyModel::stageLoads(Bytes size,
                         const std::vector<StageAssignment>& stages) const
{
    std::vector<TimeNs> loads(static_cast<std::size_t>(numDims()), 0.0);
    Bytes current = size;
    for (const auto& st : stages) {
        loads[static_cast<std::size_t>(st.dim)] +=
            transferTime(st.phase, current, st.dim);
        current = sizeAfterPhase(st.phase, current, dim(st.dim).size);
    }
    return loads;
}

} // namespace themis
