/**
 * @file
 * The Ideal method of Table 3: assumes 100% of every dimension's
 * bandwidth is usable in one pool, so communication latency is simply
 * (collective traffic) / (total BW). No chunk scheduling scheme can
 * beat it; it upper-bounds achievable speedup in Figs 4 and 12.
 */

#ifndef THEMIS_CORE_IDEAL_ESTIMATOR_HPP
#define THEMIS_CORE_IDEAL_ESTIMATOR_HPP

#include "collective/phase.hpp"
#include "core/latency_model.hpp"

namespace themis {

/**
 * Ideal communication time of a collective of per-NPU @p size over
 * the model's dimensions. All-Reduce moves its data twice (RS + AG
 * passes), every other pattern once.
 */
TimeNs idealCollectiveTime(CollectiveType type, Bytes size,
                           const LatencyModel& model);

} // namespace themis

#endif // THEMIS_CORE_IDEAL_ESTIMATOR_HPP
