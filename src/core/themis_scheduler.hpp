/**
 * @file
 * The Themis scheduler — Algorithm 1 of the paper.
 *
 * Greedy per-chunk balancing: each new chunk is routed through the
 * dimensions sorted by current tracked load (ascending for RS so the
 * biggest, first-stage volume lands on the lightest dimension;
 * descending for AG, whose volume grows towards the *last* stage).
 * For All-Reduce the AG pass mirrors the RS pass (line 8). A
 * robustness threshold (line 19) falls back to the baseline order
 * while the load gap is negligible, preventing oversubscription of
 * low-bandwidth dimensions.
 *
 * All-to-All is order-invariant (its per-dimension volume does not
 * depend on stage position), so A2A requests keep the baseline order.
 */

#ifndef THEMIS_CORE_THEMIS_SCHEDULER_HPP
#define THEMIS_CORE_THEMIS_SCHEDULER_HPP

#include "core/dim_load_tracker.hpp"
#include "core/scheduler.hpp"
#include "core/splitter.hpp"

namespace themis {

/** Greedy load-balancing chunk scheduler; see file comment. */
class ThemisScheduler final : public Scheduler
{
  public:
    /**
     * @param model  latency model over the collective's dimensions
     *               (must outlive the scheduler)
     * @param config paper-default tunables
     * @param priority_aware read the request's flow class: urgent
     *               tiers bypass the robustness threshold
     *               (SchedulerKind::ThemisPriority)
     */
    ThemisScheduler(const LatencyModel& model, ThemisConfig config = {},
                    bool priority_aware = false);

    std::string
    name() const override
    {
        return priority_aware_ ? "Themis+Priority" : "Themis";
    }

    std::vector<ChunkSchedule> scheduleCollective(CollectiveType type,
                                                  Bytes size,
                                                  int chunks) override;

    std::vector<ChunkSchedule>
    scheduleCollective(CollectiveType type, Bytes size, int chunks,
                       const FlowClass& flow) override;

    /** Tracked loads after the last scheduleCollective() call. */
    const std::vector<TimeNs>& trackedLoads() const;

    /** Active configuration. */
    const ThemisConfig& config() const { return config_; }

  private:
    /**
     * Schedule one chunk's RS-or-AG pass (the paper's
     * SCHEDULER.SCHEDULE): returns the dimension order and updates the
     * tracker with the pass's loads.
     */
    std::vector<int> scheduleChunkPass(CollectiveType type,
                                       Bytes chunk_size);

    /** Threshold of Algorithm 1 line 19 for the current chunk size. */
    TimeNs threshold(CollectiveType type, Bytes chunk_size) const;

    const LatencyModel& model_;
    ThemisConfig config_;
    bool priority_aware_;
    DimLoadTracker tracker_;
    bool tracker_valid_ = false;
};

} // namespace themis

#endif // THEMIS_CORE_THEMIS_SCHEDULER_HPP
