/**
 * @file
 * Discrete-event simulation core.
 *
 * A single-threaded event queue with deterministic ordering: events
 * firing at the same timestamp run in scheduling order (FIFO by a
 * monotonic sequence number). Handlers may schedule or cancel further
 * events freely.
 *
 * Events live in a slab of fixed-size slots recycled through a free
 * list, so steady-state scheduling performs no heap allocation:
 * handlers whose closure fits kInlineCapacity bytes are constructed
 * in place inside the slot (larger ones fall back to a heap box).
 * Event ids are generation-tagged — an id encodes (slot, generation)
 * and a slot's generation bumps on every release — so cancellation is
 * O(1) and a stale id from a previous tenant of the slot can never
 * cancel the current one.
 *
 * Two pending-set front ends sit on top of the slab:
 *
 *  - Calendar (default): a calendar queue (R. Brown, CACM '88) —
 *    entries hash into time buckets of adaptive width, and the
 *    monotone pop pattern of a simulation advances bucket by bucket,
 *    making schedule/pop amortized O(1). Bucket count and width
 *    re-adapt to the live event population, so bursty horizons and
 *    long idle gaps stay cheap.
 *  - Heap: the classic binary heap, O(log n) per pop. Kept selectable
 *    so benches can measure the calendar front end against it in the
 *    same binary.
 *
 * Both front ends fire events in the identical (timestamp, sequence)
 * order, so simulation results are bit-identical across them. The run
 * loops pop whole same-timestamp cohorts at once: one front-end
 * search serves every event of that timestamp.
 */

#ifndef THEMIS_SIM_EVENT_QUEUE_HPP
#define THEMIS_SIM_EVENT_QUEUE_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace themis::sim {

/** Pending-event store implementation; see file comment. */
enum class EventFrontEnd {
    Calendar, ///< bucketed calendar queue, amortized O(1) monotone pops
    Heap,     ///< binary heap, O(log n) pops (measurement baseline)
};

/** Front-end name for reports ("calendar"/"heap"). */
const char* eventFrontEndName(EventFrontEnd front_end);

/**
 * Deterministic discrete-event queue.
 *
 * Time never moves backwards; scheduling in the past is an internal
 * error (panics). run() executes until the queue drains.
 */
class EventQueue
{
  public:
    /**
     * Opaque handle for cancellation: (slot+1) in the high 32 bits,
     * slot generation in the low 32. Id 0 is never issued.
     */
    using EventId = std::uint64_t;

    /** Closure bytes stored in place; larger handlers are boxed. */
    static constexpr std::size_t kInlineCapacity = 48;

    explicit EventQueue(EventFrontEnd front_end = EventFrontEnd::Calendar);
    ~EventQueue() { releaseAll(); }

    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Active pending-set front end (fixed at construction). */
    EventFrontEnd frontEnd() const { return front_end_; }

    /** Current simulated time in nanoseconds. */
    TimeNs now() const { return now_; }

    /**
     * Schedule @p handler (any void() callable) to run at absolute
     * time @p when (>= now()).
     * @return handle usable with cancel().
     */
    template <typename F>
    EventId
    schedule(TimeNs when, F&& handler)
    {
        THEMIS_ASSERT(when >= now_ - 1e-9,
                      "scheduling into the past: when=" << when
                                                        << " now=" << now_);
        using Fn = std::decay_t<F>;
        // Nullable callables (std::function, function pointers) fail
        // fast here instead of crashing inside the run loop later.
        if constexpr (std::is_constructible_v<bool, const Fn&>)
            THEMIS_ASSERT(static_cast<bool>(handler),
                          "null event handler");
        if constexpr (sizeof(Fn) <= kInlineCapacity &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            return emplaceEvent<Fn>(when, std::forward<F>(handler));
        } else {
            // Closure too big for a slot: one boxing allocation.
            return emplaceEvent<Boxed<Fn>>(
                when, Boxed<Fn>{std::make_unique<Fn>(
                          std::forward<F>(handler))});
        }
    }

    /** Schedule @p handler @p delay nanoseconds from now (delay >= 0). */
    template <typename F>
    EventId
    scheduleAfter(TimeNs delay, F&& handler)
    {
        THEMIS_ASSERT(delay >= 0.0, "negative delay " << delay);
        return schedule(now_ + delay, std::forward<F>(handler));
    }

    /**
     * Cancel a pending event in O(1). Cancelling an already-fired or
     * unknown id is a harmless no-op (completion races are normal).
     */
    void cancel(EventId id);

    /** True when no live (non-cancelled) events remain. */
    bool empty() const { return live_events_ == 0; }

    /** Number of live pending events. */
    std::size_t pendingCount() const { return live_events_; }

    /**
     * Run until the queue drains.
     * @return number of handlers executed.
     */
    std::size_t run();

    /**
     * Run events with timestamp <= @p until; afterwards now() ==
     * max(now, until) even if the queue drained earlier.
     * @return number of handlers executed.
     */
    std::size_t runUntil(TimeNs until);

    /** Drop all pending events and reset the clock to zero. */
    void reset();

    /**
     * Rebase the clock of an *empty* queue back to zero (asserts
     * emptiness). Unlike reset() this keeps the slab, the calendar
     * geometry and the sequence counter, so it is O(1) and the next
     * events schedule with warm storage. Iteration-epoch replay uses
     * this so every training iteration runs in the identical time
     * frame — the precondition for bit-identical steady-state
     * trajectories regardless of how much simulated time has passed.
     */
    void rebaseToZero();

  private:
    /** Heap indirection for closures beyond kInlineCapacity. */
    template <typename Fn>
    struct Boxed
    {
        std::unique_ptr<Fn> fn;
        void operator()() { (*fn)(); }
    };

    /**
     * One pooled event. `invoke` doubles as the liveness flag; the
     * closure lives in `storage`. Freed slots chain through
     * `next_free` and bump `generation` so stale ids miss.
     */
    struct Slot
    {
        alignas(std::max_align_t) unsigned char storage[kInlineCapacity];
        void (*invoke)(void*) = nullptr;
        /** Move-construct the closure into @p dst, destroy @p src. */
        void (*relocate)(void* dst, void* src) = nullptr;
        void (*destroy)(void*) = nullptr;
        std::uint32_t generation = 0;
        std::uint32_t next_free = kNoSlot;
        /**
         * Calendar back-pointer: bucket and position of this event's
         * pending entry, so cancel() removes it eagerly in O(1)
         * (kNoSlot bucket = not stored, e.g. already collected into a
         * firing cohort). Unused by the heap front end, which discards
         * cancelled entries lazily.
         */
        std::uint32_t cal_bucket = kNoSlot;
        std::uint32_t cal_pos = 0;
    };

    struct Entry
    {
        TimeNs when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t generation;
    };

    struct Later
    {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    static constexpr std::uint32_t kNoSlot = 0xffffffffu;

    static EventId
    makeId(std::uint32_t slot, std::uint32_t generation)
    {
        return (static_cast<EventId>(slot) + 1) << 32 | generation;
    }

    template <typename Fn, typename Arg>
    EventId
    emplaceEvent(TimeNs when, Arg&& fn)
    {
        static_assert(sizeof(Fn) <= kInlineCapacity,
                      "closure does not fit an event slot");
        const std::uint32_t idx = allocSlot();
        Slot& slot = slots_[idx];
        ::new (static_cast<void*>(slot.storage)) Fn(std::forward<Arg>(fn));
        slot.invoke = [](void* p) { (*static_cast<Fn*>(p))(); };
        slot.relocate = [](void* dst, void* src) {
            ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
            static_cast<Fn*>(src)->~Fn();
        };
        slot.destroy = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
        pushEntry(Entry{when < now_ ? now_ : when, next_seq_++, idx,
                        slot.generation});
        ++live_events_;
        return makeId(idx, slot.generation);
    }

    std::uint32_t allocSlot();
    void releaseSlot(std::uint32_t idx);
    void releaseAll();

    /** True when the entry's event was cancelled or already fired. */
    bool
    entryStale(const Entry& e) const
    {
        const Slot& slot = slots_[e.slot];
        return slot.invoke == nullptr || slot.generation != e.generation;
    }

    void pushEntry(const Entry& e);
    /**
     * Locate the earliest live entry without removing it; caches its
     * position so an immediately following pop is O(1).
     * @return false when no live entries remain.
     */
    bool peekNext(Entry& out);
    /**
     * Remove every live entry with timestamp exactly @p when into
     * @p cohort, ordered by sequence number. Must follow a successful
     * peekNext() that returned this timestamp.
     */
    void collectCohortAt(TimeNs when, std::vector<Entry>& cohort);
    /** Shared run loop; fires whole same-timestamp cohorts at once. */
    std::size_t runCohorts(TimeNs until, bool bounded);

    // Calendar front end.
    std::uint64_t windowOf(TimeNs when) const;
    void calPush(const Entry& e);
    /** Append @p e to @p bucket_idx, maintaining the back-pointer. */
    void calPlace(std::uint32_t bucket_idx, const Entry& e);
    /** Swap-remove position @p pos of @p bucket_idx, fixing the moved
     *  entry's back-pointer and clearing the removed one's. */
    void calRemoveAt(std::uint32_t bucket_idx, std::size_t pos);
    bool calPeek(Entry& out);
    /** Relocate cur_win_ to the global minimum; false when empty. */
    bool calJumpToMin();
    /** Re-derive bucket count and width from the live population. */
    void calAdapt();
    void calInit();

    // Heap front end.
    bool heapPeek(Entry& out);

    EventFrontEnd front_end_;
    TimeNs now_ = 0.0;
    std::uint64_t next_seq_ = 1;
    std::size_t live_events_ = 0;
    std::vector<Slot> slots_;
    std::uint32_t free_head_ = kNoSlot;

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;

    std::vector<std::vector<Entry>> buckets_;
    double width_ = 100.0;
    std::uint64_t cur_win_ = 0;   ///< window index being scanned
    /** Stored (live) entries: cancel() removes calendar entries
     *  eagerly, so no bucket entry ever outlives its slot — the
     *  invariant calRemoveAt's back-pointer fix relies on. */
    std::size_t cal_count_ = 0;
    bool peek_valid_ = false;
    std::size_t peek_bucket_ = 0;
    std::size_t peek_pos_ = 0;

    std::vector<Entry> cohort_scratch_;
};

} // namespace themis::sim

#endif // THEMIS_SIM_EVENT_QUEUE_HPP
