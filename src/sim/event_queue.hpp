/**
 * @file
 * Discrete-event simulation core.
 *
 * A single-threaded event queue with deterministic ordering: events
 * firing at the same timestamp run in scheduling order (FIFO by event
 * id). Handlers may schedule or cancel further events freely.
 */

#ifndef THEMIS_SIM_EVENT_QUEUE_HPP
#define THEMIS_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"

namespace themis::sim {

/**
 * Deterministic discrete-event queue.
 *
 * Time never moves backwards; scheduling in the past is an internal
 * error (panics). run() executes until the queue drains.
 */
class EventQueue
{
  public:
    /** Event handler callback. */
    using Handler = std::function<void()>;

    /** Opaque handle for cancellation. Id 0 is never issued. */
    using EventId = std::uint64_t;

    EventQueue() = default;

    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time in nanoseconds. */
    TimeNs now() const { return now_; }

    /**
     * Schedule @p handler to run at absolute time @p when (>= now()).
     * @return handle usable with cancel().
     */
    EventId schedule(TimeNs when, Handler handler);

    /** Schedule @p handler @p delay nanoseconds from now (delay >= 0). */
    EventId scheduleAfter(TimeNs delay, Handler handler);

    /**
     * Cancel a pending event. Cancelling an already-fired or unknown
     * id is a harmless no-op (completion races are normal).
     */
    void cancel(EventId id);

    /** True when no live (non-cancelled) events remain. */
    bool empty() const { return live_events_ == 0; }

    /** Number of live pending events. */
    std::size_t pendingCount() const { return live_events_; }

    /**
     * Run until the queue drains.
     * @return number of handlers executed.
     */
    std::size_t run();

    /**
     * Run events with timestamp <= @p until; afterwards now() ==
     * max(now, until) even if the queue drained earlier.
     * @return number of handlers executed.
     */
    std::size_t runUntil(TimeNs until);

    /** Drop all pending events and reset the clock to zero. */
    void reset();

  private:
    struct Entry
    {
        TimeNs when;
        EventId id;
    };

    struct Later
    {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };

    bool fireNext();

    TimeNs now_ = 0.0;
    EventId next_id_ = 1;
    std::size_t live_events_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_map<EventId, Handler> handlers_;
};

} // namespace themis::sim

#endif // THEMIS_SIM_EVENT_QUEUE_HPP
