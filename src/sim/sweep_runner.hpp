/**
 * @file
 * Parallel sweep harness for independent simulations.
 *
 * The event queue is strictly single-threaded by design, so simulator
 * parallelism comes from running *disjoint* simulations concurrently:
 * each worker thread owns one EventQueue, pulls jobs off a shared
 * atomic counter, and resets its queue between jobs. This is what the
 * figure/bench harnesses need — a topology x model x chunk-count grid
 * is embarrassingly parallel — and it keeps every individual
 * simulation bit-deterministic regardless of worker count or job
 * interleaving (jobs write results into caller-owned, index-addressed
 * slots).
 *
 * Jobs must not share mutable state with each other (construct the
 * runtime, topology and stats inside the job), and must not change
 * process-global knobs such as the log level while a sweep runs.
 */

#ifndef THEMIS_SIM_SWEEP_RUNNER_HPP
#define THEMIS_SIM_SWEEP_RUNNER_HPP

#include <cstddef>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"

namespace themis::sim {

/** Sweep harness tunables. */
struct SweepOptions
{
    /**
     * Worker threads; 0 resolves to the THEMIS_SWEEP_THREADS
     * environment variable, then to std::thread::hardware_concurrency.
     * 1 runs every job inline on the calling thread. A set but
     * non-numeric or non-positive THEMIS_SWEEP_THREADS is rejected
     * with a ConfigError rather than silently ignored.
     */
    int threads = 0;

    /**
     * Pending-set front end of every worker-owned EventQueue. Heap is
     * the measurement baseline; results are bit-identical either way.
     */
    EventFrontEnd front_end = EventFrontEnd::Calendar;
};

/** Fans independent simulation jobs across workers; see file comment. */
class SweepRunner
{
  public:
    /**
     * One independent simulation. The queue arrives freshly reset
     * (now() == 0, no pending events) and belongs to the worker.
     */
    using Job = std::function<void(EventQueue&)>;

    explicit SweepRunner(SweepOptions options = {});

    /**
     * Run all jobs to completion; blocks. The first exception thrown
     * by any job is rethrown here (remaining jobs may be skipped).
     */
    void run(std::vector<Job> jobs);

    /** Resolved worker count. */
    int threads() const { return threads_; }

  private:
    int threads_;
    EventFrontEnd front_end_;
};

/**
 * Map @p fn over indexes [0, count) in parallel and collect the
 * results in index order. @p fn is called as fn(index, queue) from
 * worker threads; its result type must be default-constructible.
 */
template <typename Fn>
auto
sweepIndexed(std::size_t count, Fn&& fn, SweepOptions options = {})
    -> std::vector<decltype(fn(std::size_t{},
                               std::declval<EventQueue&>()))>
{
    using Result = decltype(fn(std::size_t{},
                               std::declval<EventQueue&>()));
    static_assert(!std::is_same_v<Result, bool>,
                  "std::vector<bool> packs bits, so concurrent workers "
                  "would race on shared bytes; return int instead");
    std::vector<Result> results(count);
    std::vector<SweepRunner::Job> jobs;
    jobs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        jobs.push_back([i, &fn, &results](EventQueue& queue) {
            results[i] = fn(i, queue);
        });
    }
    SweepRunner(options).run(std::move(jobs));
    return results;
}

} // namespace themis::sim

#endif // THEMIS_SIM_SWEEP_RUNNER_HPP
