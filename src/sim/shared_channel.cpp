#include "sim/shared_channel.hpp"

#include <vector>

#include "common/error.hpp"

namespace themis::sim {

namespace {

/** Remaining-byte tolerance: below this a transfer counts as drained. */
constexpr Bytes kDrainEps = 1e-6;

/**
 * Time sliver (ns) below which a residual transfer is force-drained:
 * when the final bytes would take less than this to move, the
 * completion timestamp can fall below the double-precision ulp of the
 * simulation clock, making the event fire with zero elapsed time.
 * One picosecond is far below any modelled latency.
 */
constexpr TimeNs kTimeSliver = 1e-3;

} // namespace

SharedChannel::SharedChannel(EventQueue& queue, Bandwidth capacity)
    : queue_(queue), capacity_(capacity), last_update_(queue.now())
{
    THEMIS_ASSERT(capacity_ > 0.0, "channel capacity must be positive");
}

SharedChannel::TransferId
SharedChannel::begin(Bytes bytes, Callback on_done)
{
    THEMIS_ASSERT(bytes >= 0.0, "negative transfer size " << bytes);
    THEMIS_ASSERT(on_done, "null transfer callback");
    advanceTo(queue_.now());
    const TransferId id = next_id_++;
    active_.emplace(id, Transfer{bytes, std::move(on_done)});
    reschedule();
    return id;
}

void
SharedChannel::abort(TransferId id)
{
    advanceTo(queue_.now());
    auto it = active_.find(id);
    if (it == active_.end())
        return;
    active_.erase(it);
    reschedule();
}

void
SharedChannel::advanceTo(TimeNs t)
{
    THEMIS_ASSERT(t >= last_update_ - 1e-9,
                  "channel time going backwards: " << t << " < "
                                                   << last_update_);
    const TimeNs dt = t - last_update_;
    last_update_ = t;
    if (dt <= 0.0 || active_.empty())
        return;
    const double rate = capacity_ / static_cast<double>(active_.size());
    for (auto& [id, transfer] : active_) {
        const Bytes progress =
            transfer.remaining < rate * dt ? transfer.remaining
                                           : rate * dt;
        transfer.remaining -= progress;
        progressed_bytes_ += progress;
    }
    busy_time_ += dt;
}

void
SharedChannel::reschedule()
{
    if (pending_event_ != 0) {
        queue_.cancel(pending_event_);
        pending_event_ = 0;
    }
    if (active_.empty())
        return;
    // Next completion: the smallest remaining at the shared rate.
    Bytes min_remaining = -1.0;
    for (const auto& [id, transfer] : active_) {
        if (min_remaining < 0.0 || transfer.remaining < min_remaining)
            min_remaining = transfer.remaining;
    }
    const double rate = capacity_ / static_cast<double>(active_.size());
    const TimeNs eta =
        min_remaining <= kDrainEps ? 0.0 : min_remaining / rate;
    pending_event_ =
        queue_.scheduleAfter(eta, [this] { onCompletionEvent(); });
}

void
SharedChannel::onCompletionEvent()
{
    pending_event_ = 0;
    advanceTo(queue_.now());
    // Drain threshold: kDrainEps normally; when floating-point clock
    // granularity swallowed the final sliver of the nearest transfer
    // (its drain time is below kTimeSliver), widen to that remainder
    // so the event still completes something.
    Bytes threshold = kDrainEps;
    Bytes min_remaining = -1.0;
    for (const auto& [id, transfer] : active_) {
        if (min_remaining < 0.0 || transfer.remaining < min_remaining)
            min_remaining = transfer.remaining;
    }
    if (min_remaining > threshold &&
        min_remaining / capacity_ < kTimeSliver) {
        threshold = min_remaining;
    }
    // Collect everything that drained (simultaneous completions are
    // possible), remove them from the active set *before* invoking the
    // callbacks so callbacks can begin() new transfers safely.
    std::vector<Callback> done;
    for (auto it = active_.begin(); it != active_.end();) {
        if (it->second.remaining <= threshold) {
            progressed_bytes_ += it->second.remaining;
            done.push_back(std::move(it->second.on_done));
            it = active_.erase(it);
        } else {
            ++it;
        }
    }
    THEMIS_ASSERT(!done.empty(),
                  "completion event fired with nothing drained");
    for (auto& cb : done)
        cb();
    // Callbacks may have begun new transfers (each begin() already
    // rescheduled); make sure a completion is queued for survivors.
    if (pending_event_ == 0)
        reschedule();
}

} // namespace themis::sim
