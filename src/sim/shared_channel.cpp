#include "sim/shared_channel.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"

namespace themis::sim {

namespace {

/** Remaining-byte tolerance: below this a transfer counts as drained. */
constexpr Bytes kDrainEps = 1e-6;

/**
 * Time sliver (ns) below which a residual transfer is force-drained:
 * when the final bytes would take less than this to move, the
 * completion timestamp can fall below the double-precision ulp of the
 * simulation clock, making the event fire with zero elapsed time.
 * One picosecond is far below any modelled latency.
 */
constexpr TimeNs kTimeSliver = 1e-3;

/**
 * Virtual-time rebase threshold. The drain test compares finish
 * points against vtime_ + kDrainEps, so kDrainEps must stay above the
 * double ulp of the virtual clock: ulp(4e9) ~ 9.5e-7 < kDrainEps <
 * ulp(8e9). Rebasing at 1e9 keeps a comfortable margin — the primary
 * eps path never degenerates, for any channel capacity — and the
 * shift is O(pending finishes) once per ~gigabyte of unit-weight
 * service, i.e. free. Long sweeps (petabytes of cumulative service
 * through one channel) stay exact, with or without weights: the
 * shift preserves every (v_end - vtime_) difference, which is the
 * only quantity the weighted drain logic consumes.
 */
constexpr double kRebaseThreshold = 1e9;

/**
 * Sanity cap on priority-class indices. Cluster jobs stride the class
 * space (accountingClass() = job * tiers + tier), and job churn keeps
 * allocating fresh indices for a runtime's whole lifetime, so the cap
 * only rejects wild values (negative wraparound, garbage), not large
 * legitimate ones — the accounting itself is a map that stays
 * O(active classes) via retireClass().
 */
constexpr int kMaxPriorityClass = (1 << 22) - 1;

} // namespace

SharedChannel::SharedChannel(EventQueue& queue, Bandwidth capacity,
                             ChannelFairness fairness)
    : queue_(queue), capacity_(capacity), fairness_(fairness),
      last_update_(queue.now())
{
    THEMIS_ASSERT(capacity_ > 0.0, "channel capacity must be positive");
}

void
SharedChannel::heapPush(FinishEntry entry)
{
    finish_heap_.push_back(entry);
    std::push_heap(finish_heap_.begin(), finish_heap_.end(),
                   FinishLater{});
}

void
SharedChannel::heapPop()
{
    std::pop_heap(finish_heap_.begin(), finish_heap_.end(),
                  FinishLater{});
    finish_heap_.pop_back();
}

double
SharedChannel::virtualRate() const
{
    // Egalitarian keeps the literal pre-priority expression; Weighted
    // with all-unit weights has weight_sum_ == active_.size() exactly
    // (sums of 1.0 are integers), so the two branches divide by the
    // same double and stay bit-identical.
    if (fairness_ == ChannelFairness::Egalitarian)
        return capacity_ / static_cast<double>(active_.size());
    return capacity_ / weight_sum_;
}

SharedChannel::ClassState&
SharedChannel::classState(int cls)
{
    return classes_[cls];
}

int
SharedChannel::numClasses() const
{
    int max_id = -1;
    for (const auto& [cls, state] : classes_)
        max_id = std::max(max_id, cls);
    return max_id + 1;
}

std::vector<int>
SharedChannel::classIds() const
{
    std::vector<int> ids;
    ids.reserve(classes_.size());
    for (const auto& [cls, state] : classes_)
        ids.push_back(cls);
    std::sort(ids.begin(), ids.end());
    return ids;
}

void
SharedChannel::retireClass(int cls)
{
    const auto it = classes_.find(cls);
    if (it == classes_.end())
        return;
    THEMIS_ASSERT(it->second.active == 0,
                  "retiring class " << cls << " with "
                                    << it->second.active
                                    << " transfers in flight");
    classes_.erase(it);
}

Bytes
SharedChannel::classProgressedBytes(int cls) const
{
    const auto it = classes_.find(cls);
    return it == classes_.end() ? 0.0 : it->second.progressed;
}

TimeNs
SharedChannel::classBusyTime(int cls) const
{
    const auto it = classes_.find(cls);
    return it == classes_.end() ? 0.0 : it->second.busy;
}

SharedChannel::TransferId
SharedChannel::begin(Bytes bytes, Callback on_done)
{
    return begin(bytes, 1.0, std::move(on_done), 0);
}

SharedChannel::TransferId
SharedChannel::begin(Bytes bytes, double weight, Callback on_done,
                     int priority_class, FailCallback on_fail)
{
    THEMIS_ASSERT(bytes >= 0.0, "negative transfer size " << bytes);
    THEMIS_ASSERT(on_done, "null transfer callback");
    THEMIS_ASSERT(weight > 0.0, "flow weight must be positive, got "
                                    << weight);
    THEMIS_ASSERT(priority_class >= 0 &&
                      priority_class <= kMaxPriorityClass,
                  "priority class " << priority_class
                                    << " out of range");
    THEMIS_ASSERT(fairness_ == ChannelFairness::Weighted ||
                      weight == 1.0,
                  "egalitarian channel requires unit weights, got "
                      << weight);
    advanceTo(queue_.now());
    const TransferId id = next_id_++;
    // Weight scales the virtual service demand: a weight-w transfer
    // drains when the unit-weight clock has advanced bytes/w (it
    // receives w bytes per virtual byte). Unit weight — the common
    // case — skips the division; x/1.0 == x exactly, so both forms
    // preserve the egalitarian finish points.
    const double v_end =
        vtime_ + (weight == 1.0 ? bytes : bytes / weight);
    active_.emplace(id, Transfer{std::move(on_done), weight,
                                 priority_class, std::move(on_fail)});
    weight_sum_ += weight;
    ClassState& cs = classState(priority_class);
    cs.weight_sum += weight;
    if (cs.active == 0)
        busy_classes_.push_back(priority_class);
    ++cs.active;
    heapPush(FinishEntry{v_end, id});
    if (active_.size() > peak_active_)
        peak_active_ = active_.size();
    reschedule();
    return id;
}

void
SharedChannel::dropWeight(const Transfer& t)
{
    weight_sum_ -= t.weight;
    ClassState& cs = classState(t.cls);
    cs.weight_sum -= t.weight;
    THEMIS_ASSERT(cs.active > 0, "class active count out of sync");
    --cs.active;
    if (cs.active == 0) {
        cs.weight_sum = 0.0; // shed fp drift at class quiesce points
        // Swap-remove from the busy list; per-class accumulators are
        // independent, so the resulting order cannot affect values.
        for (std::size_t i = 0; i < busy_classes_.size(); ++i) {
            if (busy_classes_[i] == t.cls) {
                busy_classes_[i] = busy_classes_.back();
                busy_classes_.pop_back();
                break;
            }
        }
    }
    if (active_.empty())
        weight_sum_ = 0.0; // shed fp drift at channel quiesce points
}

void
SharedChannel::epochReset()
{
    THEMIS_ASSERT(active_.empty(),
                  "epoch reset with transfers in flight");
    // Any recorded completion event is stale by construction (an idle
    // channel schedules nothing), and the caller has just rebased the
    // event queue, so the id must simply be forgotten, not cancelled.
    pending_event_ = 0;
    finish_heap_.clear();
    vtime_ = 0.0;
    weight_sum_ = 0.0;
    last_update_ = queue_.now();
    progressed_bytes_ = 0.0;
    busy_time_ = 0.0;
    // Keep the tracked class set (per-class reports keep their rows
    // across iteration epochs); zero the accumulators. No transfer is
    // in flight, so the busy list is necessarily empty already.
    THEMIS_ASSERT(busy_classes_.empty(),
                  "busy class list out of sync at epoch reset");
    for (auto& [cls, cs] : classes_)
        cs = ClassState{};
}

void
SharedChannel::abort(TransferId id)
{
    advanceTo(queue_.now());
    auto it = active_.find(id);
    if (it == active_.end())
        return;
    // The partial service received so far stays in progressed_bytes_;
    // only the untransferred remainder vanishes with the transfer. The
    // heap entry is discarded lazily by dropStaleTop().
    const Transfer t = std::move(it->second);
    active_.erase(it);
    dropWeight(t);
    reschedule();
}

void
SharedChannel::maybeRebase()
{
    if (vtime_ < kRebaseThreshold)
        return;
    rebaseNow();
}

void
SharedChannel::rebaseNow()
{
    // Uniformly shifting every finish point preserves the heap order
    // and every (v_end - vtime_) difference the drain logic consumes.
    const double base = vtime_;
    for (FinishEntry& entry : finish_heap_)
        entry.v_end -= base;
    vtime_ = 0.0;
}

void
SharedChannel::setCapacity(TimeNs t, Bandwidth bw)
{
    THEMIS_ASSERT(bw > 0.0 && std::isfinite(bw),
                  "channel capacity must be positive finite, got "
                      << bw);
    THEMIS_ASSERT(t <= queue_.now() + 1e-9,
                  "capacity step at " << t << " is in the future of "
                                      << queue_.now());
    if (bw == capacity_)
        return;
    // Settle all progress accounts under the old capacity first, then
    // anchor virtual time at zero so repeated steps cannot push the
    // drain-epsilon comparison into large-magnitude territory.
    advanceTo(t);
    rebaseNow();
    capacity_ = bw;
    // Pending completion ETA was computed at the old rate.
    reschedule();
}

std::size_t
SharedChannel::failActive()
{
    advanceTo(queue_.now());
    if (active_.empty())
        return 0;
    // The finish points live only in the heap; collect the live ones
    // (skipping aborted leftovers) so each failure can report its
    // untransferred remainder.
    std::vector<std::pair<FailCallback, Bytes>> failed;
    failed.reserve(active_.size());
    std::vector<std::pair<TransferId, double>> live;
    live.reserve(active_.size());
    for (const FinishEntry& entry : finish_heap_)
        if (active_.find(entry.id) != active_.end())
            live.emplace_back(entry.id, entry.v_end);
    THEMIS_ASSERT(live.size() == active_.size(),
                  "finish heap lost a live transfer");
    // Fail in begin order (ids are monotonic), mirroring the drain
    // callback order.
    std::sort(live.begin(), live.end());
    for (const auto& [id, v_end] : live) {
        auto it = active_.find(id);
        Transfer t = std::move(it->second);
        THEMIS_ASSERT(t.on_fail,
                      "failActive: transfer " << id
                                              << " has no fail handler");
        // Like abort(): the service received so far stays in the
        // progress accounts; only the remainder is lost.
        const double residual = (v_end - vtime_) * t.weight;
        const Bytes remaining = residual > 0.0 ? residual : 0.0;
        active_.erase(it);
        dropWeight(t);
        failed.emplace_back(std::move(t.on_fail), remaining);
    }
    finish_heap_.clear();
    if (pending_event_ != 0) {
        queue_.cancel(pending_event_);
        pending_event_ = 0;
    }
    for (auto& [cb, remaining] : failed)
        cb(remaining);
    // Failure handlers may have begun fresh transfers (each begin()
    // reschedules); make sure survivors have a completion queued.
    if (pending_event_ == 0 && !active_.empty())
        reschedule();
    return failed.size();
}

void
SharedChannel::advanceTo(TimeNs t)
{
    THEMIS_ASSERT(t >= last_update_ - 1e-9,
                  "channel time going backwards: " << t << " < "
                                                   << last_update_);
    const TimeNs dt = t - last_update_;
    last_update_ = t;
    if (dt <= 0.0 || active_.empty())
        return;
    // Weighted fluid service: every active transfer receives
    // capacity * w / weight_sum, so the unit-weight virtual clock
    // gains capacity / weight_sum * dt and the channel as a whole
    // moves capacity * dt bytes. Between completion events no
    // transfer can exceed its demand, so no per-transfer clamping is
    // needed (slivers are corrected exactly at drain time).
    const double rate = virtualRate();
    vtime_ += rate * dt;
    progressed_bytes_ += capacity_ * dt;
    busy_time_ += dt;
    // Per-class attribution: a class with aggregate weight W_c moves
    // capacity * W_c / weight_sum = rate * W_c bytes per ns. (In
    // egalitarian mode all weights are 1, so W_c is the class's
    // active count and rate is capacity/n — the same formula.)
    for (const int cls : busy_classes_) {
        ClassState& cs = classes_.find(cls)->second;
        cs.progressed += rate * cs.weight_sum * dt;
        cs.busy += dt;
    }
    maybeRebase();
}

bool
SharedChannel::dropStaleTop()
{
    while (!finish_heap_.empty() &&
           active_.find(finish_heap_.front().id) == active_.end())
        heapPop(); // aborted; discard lazily
    return !finish_heap_.empty();
}

void
SharedChannel::reschedule()
{
    if (pending_event_ != 0) {
        queue_.cancel(pending_event_);
        pending_event_ = 0;
    }
    if (!dropStaleTop())
        return;
    // Next completion: the heap top's virtual remainder at the
    // unit-weight virtual rate (the earliest v_end drains first by
    // construction, independent of weights).
    const double min_remaining = finish_heap_.front().v_end - vtime_;
    const double rate = virtualRate();
    const TimeNs eta =
        min_remaining <= kDrainEps ? 0.0 : min_remaining / rate;
    pending_event_ =
        queue_.scheduleAfter(eta, [this] { onCompletionEvent(); });
}

void
SharedChannel::onCompletionEvent()
{
    pending_event_ = 0;
    advanceTo(queue_.now());
    THEMIS_ASSERT(dropStaleTop(),
                  "completion event fired with no active transfers");
    // Drain threshold in virtual time: kDrainEps normally; when
    // floating-point clock granularity swallowed the final sliver of
    // the nearest transfer (its drain time is below kTimeSliver),
    // widen to its finish point so the event still completes
    // something. The sliver test deliberately measures the virtual
    // remainder at full capacity — conservative under weights, and
    // bit-identical to the egalitarian expression when weights are 1.
    double threshold = vtime_ + kDrainEps;
    const double top_remaining = finish_heap_.front().v_end - vtime_;
    if (top_remaining > kDrainEps &&
        top_remaining / capacity_ < kTimeSliver) {
        threshold = finish_heap_.front().v_end;
    }
    // Collect everything that drained (simultaneous completions are
    // possible), remove them from the active set *before* invoking the
    // callbacks so callbacks can begin()/abort() safely. Each drained
    // transfer's progress account is settled exactly to its demand:
    // advanceTo attributed (vtime_ - v_start) * weight to it, so the
    // weight-scaled residual (v_end - vtime_) * weight (positive for
    // a force-drained sliver, negative for ulp overshoot) closes the
    // books — conservation is exact per class and in aggregate.
    std::vector<std::pair<TransferId, Callback>> done;
    while (dropStaleTop() && finish_heap_.front().v_end <= threshold) {
        const FinishEntry entry = finish_heap_.front();
        heapPop();
        auto it = active_.find(entry.id);
        const double residual =
            (entry.v_end - vtime_) * it->second.weight;
        progressed_bytes_ += residual;
        classState(it->second.cls).progressed += residual;
        done.emplace_back(entry.id, std::move(it->second.on_done));
        const Transfer t{nullptr, it->second.weight, it->second.cls,
                         nullptr};
        active_.erase(it);
        dropWeight(t);
    }
    THEMIS_ASSERT(!done.empty(),
                  "completion event fired with nothing drained");
    // Callbacks run in begin order (ids are monotonic), matching the
    // historical id-ordered drain scan.
    std::sort(done.begin(), done.end(),
              [](const auto& a, const auto& b) {
                  return a.first < b.first;
              });
    for (auto& [id, cb] : done)
        cb();
    // Callbacks may have begun new transfers (each begin() already
    // rescheduled); make sure a completion is queued for survivors.
    if (pending_event_ == 0)
        reschedule();
}

void
SharedChannel::publishMetrics(
    stats::telemetry::MetricsRegistry& registry,
    const std::string& prefix) const
{
    registry.gauge(prefix + ".capacity_gbps").set(bwToGbps(capacity_));
    registry.gauge(prefix + ".progressed_bytes")
        .set(progressed_bytes_);
    registry.gauge(prefix + ".classes")
        .set(static_cast<double>(numClasses()));
    registry.gauge(prefix + ".peak_active")
        .set(static_cast<double>(peak_active_));
}

} // namespace themis::sim
