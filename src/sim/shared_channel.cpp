#include "sim/shared_channel.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace themis::sim {

namespace {

/** Remaining-byte tolerance: below this a transfer counts as drained. */
constexpr Bytes kDrainEps = 1e-6;

/**
 * Time sliver (ns) below which a residual transfer is force-drained:
 * when the final bytes would take less than this to move, the
 * completion timestamp can fall below the double-precision ulp of the
 * simulation clock, making the event fire with zero elapsed time.
 * One picosecond is far below any modelled latency.
 */
constexpr TimeNs kTimeSliver = 1e-3;

/**
 * Virtual-time rebase threshold. The drain test compares finish
 * points against vtime_ + kDrainEps, so kDrainEps must stay above the
 * double ulp of the virtual clock: ulp(4e9) ~ 9.5e-7 < kDrainEps <
 * ulp(8e9). Rebasing at 1e9 keeps a comfortable margin — the primary
 * eps path never degenerates, for any channel capacity — and the
 * shift is O(pending finishes) once per ~gigabyte of equal-share
 * service, i.e. free. Long sweeps (petabytes of cumulative service
 * through one channel) stay exact.
 */
constexpr double kRebaseThreshold = 1e9;

} // namespace

SharedChannel::SharedChannel(EventQueue& queue, Bandwidth capacity)
    : queue_(queue), capacity_(capacity), last_update_(queue.now())
{
    THEMIS_ASSERT(capacity_ > 0.0, "channel capacity must be positive");
}

void
SharedChannel::heapPush(FinishEntry entry)
{
    finish_heap_.push_back(entry);
    std::push_heap(finish_heap_.begin(), finish_heap_.end(),
                   FinishLater{});
}

void
SharedChannel::heapPop()
{
    std::pop_heap(finish_heap_.begin(), finish_heap_.end(),
                  FinishLater{});
    finish_heap_.pop_back();
}

SharedChannel::TransferId
SharedChannel::begin(Bytes bytes, Callback on_done)
{
    THEMIS_ASSERT(bytes >= 0.0, "negative transfer size " << bytes);
    THEMIS_ASSERT(on_done, "null transfer callback");
    advanceTo(queue_.now());
    const TransferId id = next_id_++;
    const double v_end = vtime_ + bytes;
    active_.emplace(id, Transfer{std::move(on_done)});
    heapPush(FinishEntry{v_end, id});
    if (active_.size() > peak_active_)
        peak_active_ = active_.size();
    reschedule();
    return id;
}

void
SharedChannel::abort(TransferId id)
{
    advanceTo(queue_.now());
    auto it = active_.find(id);
    if (it == active_.end())
        return;
    // The partial service received so far stays in progressed_bytes_;
    // only the untransferred remainder vanishes with the transfer. The
    // heap entry is discarded lazily by dropStaleTop().
    active_.erase(it);
    reschedule();
}

void
SharedChannel::maybeRebase()
{
    if (vtime_ < kRebaseThreshold)
        return;
    // Uniformly shifting every finish point preserves the heap order
    // and every (v_end - vtime_) difference the drain logic consumes.
    const double base = vtime_;
    for (FinishEntry& entry : finish_heap_)
        entry.v_end -= base;
    vtime_ = 0.0;
}

void
SharedChannel::advanceTo(TimeNs t)
{
    THEMIS_ASSERT(t >= last_update_ - 1e-9,
                  "channel time going backwards: " << t << " < "
                                                   << last_update_);
    const TimeNs dt = t - last_update_;
    last_update_ = t;
    if (dt <= 0.0 || active_.empty())
        return;
    // Equal-share fluid service: every active transfer receives
    // capacity/n, so the virtual clock gains that much and the channel
    // as a whole moves capacity * dt bytes. Between completion events
    // no transfer can exceed its demand, so no per-transfer clamping
    // is needed (slivers are corrected exactly at drain time).
    const auto n = static_cast<double>(active_.size());
    vtime_ += capacity_ / n * dt;
    progressed_bytes_ += capacity_ * dt;
    busy_time_ += dt;
    maybeRebase();
}

bool
SharedChannel::dropStaleTop()
{
    while (!finish_heap_.empty() &&
           active_.find(finish_heap_.front().id) == active_.end())
        heapPop(); // aborted; discard lazily
    return !finish_heap_.empty();
}

void
SharedChannel::reschedule()
{
    if (pending_event_ != 0) {
        queue_.cancel(pending_event_);
        pending_event_ = 0;
    }
    if (!dropStaleTop())
        return;
    // Next completion: the heap top's virtual remainder at the shared
    // rate (the earliest v_end drains first by construction).
    const double min_remaining = finish_heap_.front().v_end - vtime_;
    const double rate =
        capacity_ / static_cast<double>(active_.size());
    const TimeNs eta =
        min_remaining <= kDrainEps ? 0.0 : min_remaining / rate;
    pending_event_ =
        queue_.scheduleAfter(eta, [this] { onCompletionEvent(); });
}

void
SharedChannel::onCompletionEvent()
{
    pending_event_ = 0;
    advanceTo(queue_.now());
    THEMIS_ASSERT(dropStaleTop(),
                  "completion event fired with no active transfers");
    // Drain threshold in virtual time: kDrainEps normally; when
    // floating-point clock granularity swallowed the final sliver of
    // the nearest transfer (its drain time is below kTimeSliver),
    // widen to its finish point so the event still completes something.
    double threshold = vtime_ + kDrainEps;
    const double top_remaining = finish_heap_.front().v_end - vtime_;
    if (top_remaining > kDrainEps &&
        top_remaining / capacity_ < kTimeSliver) {
        threshold = finish_heap_.front().v_end;
    }
    // Collect everything that drained (simultaneous completions are
    // possible), remove them from the active set *before* invoking the
    // callbacks so callbacks can begin()/abort() safely. Each drained
    // transfer's progress account is settled exactly to its demand:
    // advanceTo attributed (vtime_ - v_start) to it, so the residual
    // v_end - vtime_ (positive for a force-drained sliver, negative
    // for ulp overshoot) closes the books — conservation is exact.
    std::vector<std::pair<TransferId, Callback>> done;
    while (dropStaleTop() && finish_heap_.front().v_end <= threshold) {
        const FinishEntry entry = finish_heap_.front();
        heapPop();
        auto it = active_.find(entry.id);
        progressed_bytes_ += entry.v_end - vtime_;
        done.emplace_back(entry.id, std::move(it->second.on_done));
        active_.erase(it);
    }
    THEMIS_ASSERT(!done.empty(),
                  "completion event fired with nothing drained");
    // Callbacks run in begin order (ids are monotonic), matching the
    // historical id-ordered drain scan.
    std::sort(done.begin(), done.end(),
              [](const auto& a, const auto& b) {
                  return a.first < b.first;
              });
    for (auto& [id, cb] : done)
        cb();
    // Callbacks may have begun new transfers (each begin() already
    // rescheduled); make sure a completion is queued for survivors.
    if (pending_event_ == 0)
        reschedule();
}

} // namespace themis::sim
