/**
 * @file
 * Deterministic fault & heterogeneity scenario timeline.
 *
 * A FaultTimeline is a schedule of per-dimension capacity events that a
 * FaultDriver applies to the live SharedChannels while a run executes:
 *
 *  - degrade:   link capacity is multiplied by a factor over a window
 *               (a congested or partially failed link),
 *  - straggler: a permanent per-dimension capacity scale from a point
 *               in time onward (a slow NPU / NIC),
 *  - flap:      the link goes down for a window; transfers in flight
 *               FAIL and are retried by the runtime with exponential
 *               backoff.
 *
 * Timelines are data, not behaviour: building or parsing one touches
 * no simulator state, so the same timeline object can drive many runs
 * (and the convergence replayer can query it analytically to find
 * quiescent phases). All times are absolute nanoseconds on the run's
 * global clock — iteration epochs rebase the event queue, so the
 * runtime's FaultDriver tracks the rebase offset, not this class.
 *
 * Scheduled events expand into atomic boundary events (start/end pairs
 * share a `pair` id) kept sorted by (time, insertion order) so the
 * driver can apply them as a cursor sweep.
 */

#ifndef THEMIS_SIM_FAULT_TIMELINE_HPP
#define THEMIS_SIM_FAULT_TIMELINE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace themis {
class Rng;
}

namespace themis::sim {

/** Atomic boundary event a scheduled fault expands into. */
enum class FaultKind : std::uint8_t {
    DegradeStart,   ///< multiply capacity by `factor`
    DegradeEnd,     ///< undo the paired DegradeStart
    StragglerStart, ///< permanently multiply capacity by `factor`
    FlapDown,       ///< link down; in-flight transfers fail
    FlapUp,         ///< link back up; `factor` holds the nominal
                    ///< down-window in ns (for downtime accounting)
    LinkDown,       ///< one link (`link`) of the dim down; in-flight
                    ///< transfers fail, the dim keeps the surviving
                    ///< links' share of its aggregate bandwidth
    LinkUp,         ///< the link is back; `factor` holds the nominal
                    ///< down-window in ns (for downtime accounting)
};

/** Reporting name for a fault boundary kind. */
const char* faultKindName(FaultKind kind);

/** One atomic capacity event on one dimension. */
struct FaultEvent {
    TimeNs at = 0.0;  ///< absolute simulated time (ns)
    int dim = 0;      ///< global dimension index
    FaultKind kind = FaultKind::DegradeStart;
    /** Capacity factor (degrade/straggler) or down-window ns
     *  (FlapUp/LinkUp). */
    double factor = 1.0;
    /** Links a start event to its end event (degrade/flap pairs). */
    std::uint64_t pair = 0;
    /** Failing link index within the dim (LinkDown/LinkUp); -1 for
     *  whole-dimension events. */
    int link = -1;
};

/**
 * Ordered schedule of capacity events. Immutable once handed to a run.
 */
class FaultTimeline
{
  public:
    /**
     * Parse a `--faults` spec. Grammar (times/durations in ns, may use
     * scientific notation):
     *
     *   spec      := event (';' event)*
     *   event     := kind '@' time ['+' duration] [':' kv (',' kv)*]
     *   degrade@T+D:dim=K,factor=F     capacity x F during [T, T+D)
     *   straggler@T:dim=K,factor=F     capacity x F from T onward
     *   flap@T+D:dim=K                 link K down during [T, T+D)
     *   link@T+D:dim=K,index=I         only link I of dim K down
     *                                  during [T, T+D); the dim keeps
     *                                  the surviving links' bandwidth
     *   storm@T+W:dim=K,flaps=N,down=D[,seed=S]
     *                                  N seeded-random flaps of D ns
     *                                  starting within [T, T+W)
     *
     * Throws ConfigError with event- and field-level context on any
     * malformed input.
     */
    static FaultTimeline parse(const std::string& spec);

    /** Capacity x @p factor on @p dim during [start, start+duration). */
    void addDegrade(int dim, TimeNs start, TimeNs duration, double factor);

    /** Permanent capacity x @p factor on @p dim from @p start onward. */
    void addStraggler(int dim, TimeNs start, double factor);

    /** Link @p dim down during [start, start+down); transfers fail. */
    void addFlap(int dim, TimeNs start, TimeNs down);

    /**
     * Only link @p link of @p dim down during [start, start+down).
     * In-flight transfers on the dim fail once, then the dim runs at
     * the surviving links' share of its aggregate bandwidth until the
     * link returns (full hold only when every link is down).
     */
    void addLinkFlap(int dim, int link, TimeNs start, TimeNs down);

    /**
     * @p flaps seeded-random flaps of @p down ns each, with start times
     * drawn uniformly from [start, start+window). Deterministic in
     * @p rng's seed; flaps may overlap (the driver depth-counts).
     */
    void addFlapStorm(int dim, TimeNs start, TimeNs window, int flaps,
                      TimeNs down, Rng& rng);

    /** True when the timeline holds no events. */
    bool empty() const { return events_.empty(); }

    /** Boundary events sorted by (time, insertion order). */
    const std::vector<FaultEvent>& events() const { return events_; }

    /** Number of atomic boundary events. */
    std::size_t eventCount() const { return events_.size(); }

    /** Largest dimension index referenced, or -1 when empty. */
    int maxDim() const;

    /** Fatal ConfigError when any event targets dim >= @p num_dims. */
    void validateForDims(int num_dims) const;

    /**
     * Fatal ConfigError when a per-link event targets a link index
     * >= its dimension's entry in @p links_per_dim (one entry per
     * global dim). Whole-dimension events are ignored.
     */
    void validateLinks(const std::vector<int>& links_per_dim) const;

    /** Time of the first event with at >= @p t, or +inf when none. */
    TimeNs nextEventAtOrAfter(TimeNs t) const;

    /** Time of the first event with at > @p t, or +inf when none. */
    TimeNs nextEventAfter(TimeNs t) const;

    /** One-line human summary, e.g. "6 events on 2 dims". */
    std::string describe() const;

  private:
    void insert(FaultEvent e);

    std::vector<FaultEvent> events_; ///< sorted by (at, seq)
    std::uint64_t next_pair_ = 1;
};

} // namespace themis::sim

#endif // THEMIS_SIM_FAULT_TIMELINE_HPP
