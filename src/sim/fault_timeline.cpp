/**
 * @file
 * FaultTimeline construction, `--faults` spec parsing and queries.
 */

#include "sim/fault_timeline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_set>

#include "common/error.hpp"
#include "common/random.hpp"
#include "common/string_util.hpp"

namespace themis::sim {

namespace {

/**
 * Parsing context threaded through the field parsers so every
 * diagnostic names the event ordinal and the offending field.
 */
struct EventContext {
    std::size_t ordinal; ///< 1-based event position in the spec
    std::string kind;    ///< event kind token, for messages
};

[[noreturn]] void
fieldError(const EventContext& ctx, const std::string& field,
           const std::string& why)
{
    THEMIS_FATAL("--faults event " << ctx.ordinal << " (" << ctx.kind
                                   << "): field '" << field
                                   << "': " << why);
}

double
parseNumberField(const EventContext& ctx, const std::string& field,
                 const std::string& text)
{
    if (text.empty())
        fieldError(ctx, field, "empty value");
    std::size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(text, &pos);
    } catch (const std::exception&) {
        fieldError(ctx, field, "'" + text + "' is not a number");
    }
    if (pos != text.size())
        fieldError(ctx, field,
                   "trailing characters in '" + text + "'");
    if (!std::isfinite(value))
        fieldError(ctx, field, "'" + text + "' is not finite");
    return value;
}

int
parseIntField(const EventContext& ctx, const std::string& field,
              const std::string& text)
{
    const double v = parseNumberField(ctx, field, text);
    if (v != std::floor(v) || std::abs(v) > 1e9)
        fieldError(ctx, field, "'" + text + "' is not an integer");
    return static_cast<int>(v);
}

/** key=value list after the ':' separator, duplicate keys rejected. */
std::vector<std::pair<std::string, std::string>>
parseParams(const EventContext& ctx, const std::string& text)
{
    std::vector<std::pair<std::string, std::string>> kvs;
    std::unordered_set<std::string> seen;
    if (text.empty())
        return kvs;
    for (const std::string& item : split(text, ',')) {
        const auto eq = item.find('=');
        if (eq == std::string::npos || eq == 0)
            THEMIS_FATAL("--faults event "
                         << ctx.ordinal << " (" << ctx.kind << "): '"
                         << item << "' is not key=value");
        std::string key = item.substr(0, eq);
        if (!seen.insert(key).second)
            fieldError(ctx, key, "duplicate field");
        kvs.emplace_back(std::move(key), item.substr(eq + 1));
    }
    return kvs;
}

} // namespace

const char*
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::DegradeStart: return "degrade-start";
    case FaultKind::DegradeEnd: return "degrade-end";
    case FaultKind::StragglerStart: return "straggler";
    case FaultKind::FlapDown: return "flap-down";
    case FaultKind::FlapUp: return "flap-up";
    case FaultKind::LinkDown: return "link-down";
    case FaultKind::LinkUp: return "link-up";
    }
    return "?";
}

void
FaultTimeline::insert(FaultEvent e)
{
    // Keep (at, insertion order) sorted: upper_bound on time alone
    // preserves the order pairs were added for same-timestamp events.
    const auto it = std::upper_bound(
        events_.begin(), events_.end(), e.at,
        [](TimeNs t, const FaultEvent& x) { return t < x.at; });
    events_.insert(it, e);
}

void
FaultTimeline::addDegrade(int dim, TimeNs start, TimeNs duration,
                          double factor)
{
    if (dim < 0)
        THEMIS_FATAL("degrade: dim " << dim << " is negative");
    if (!(start >= 0.0))
        THEMIS_FATAL("degrade: start " << start << " is negative");
    if (!(duration > 0.0))
        THEMIS_FATAL("degrade: duration " << duration
                                          << " must be positive");
    if (!(factor > 0.0) || !std::isfinite(factor))
        THEMIS_FATAL("degrade: factor " << factor
                                        << " must be positive finite");
    const std::uint64_t pair = next_pair_++;
    insert({start, dim, FaultKind::DegradeStart, factor, pair});
    insert({start + duration, dim, FaultKind::DegradeEnd, factor, pair});
}

void
FaultTimeline::addStraggler(int dim, TimeNs start, double factor)
{
    if (dim < 0)
        THEMIS_FATAL("straggler: dim " << dim << " is negative");
    if (!(start >= 0.0))
        THEMIS_FATAL("straggler: start " << start << " is negative");
    if (!(factor > 0.0) || !std::isfinite(factor))
        THEMIS_FATAL("straggler: factor "
                     << factor << " must be positive finite");
    insert({start, dim, FaultKind::StragglerStart, factor, 0});
}

void
FaultTimeline::addFlap(int dim, TimeNs start, TimeNs down)
{
    if (dim < 0)
        THEMIS_FATAL("flap: dim " << dim << " is negative");
    if (!(start >= 0.0))
        THEMIS_FATAL("flap: start " << start << " is negative");
    if (!(down > 0.0))
        THEMIS_FATAL("flap: down-window " << down
                                          << " must be positive");
    const std::uint64_t pair = next_pair_++;
    insert({start, dim, FaultKind::FlapDown, 1.0, pair});
    insert({start + down, dim, FaultKind::FlapUp, down, pair});
}

void
FaultTimeline::addLinkFlap(int dim, int link, TimeNs start, TimeNs down)
{
    if (dim < 0)
        THEMIS_FATAL("link: dim " << dim << " is negative");
    if (link < 0)
        THEMIS_FATAL("link: index " << link << " is negative");
    if (!(start >= 0.0))
        THEMIS_FATAL("link: start " << start << " is negative");
    if (!(down > 0.0))
        THEMIS_FATAL("link: down-window " << down
                                          << " must be positive");
    const std::uint64_t pair = next_pair_++;
    insert({start, dim, FaultKind::LinkDown, 1.0, pair, link});
    insert({start + down, dim, FaultKind::LinkUp, down, pair, link});
}

void
FaultTimeline::addFlapStorm(int dim, TimeNs start, TimeNs window,
                            int flaps, TimeNs down, Rng& rng)
{
    if (!(window > 0.0))
        THEMIS_FATAL("storm: window " << window << " must be positive");
    if (flaps < 1)
        THEMIS_FATAL("storm: flaps " << flaps << " must be >= 1");
    // Draw the flap starts first, then sort, so the expansion is a
    // pure function of the seed regardless of insertion mechanics.
    std::vector<TimeNs> starts(static_cast<std::size_t>(flaps));
    for (TimeNs& t : starts)
        t = start + rng.uniformReal(0.0, window);
    std::sort(starts.begin(), starts.end());
    for (TimeNs t : starts)
        addFlap(dim, t, down);
}

FaultTimeline
FaultTimeline::parse(const std::string& spec)
{
    FaultTimeline tl;
    const std::vector<std::string> items = split(spec, ';');
    std::size_t ordinal = 0;
    for (const std::string& item : items) {
        ++ordinal;
        if (item.empty())
            THEMIS_FATAL("--faults event " << ordinal
                                           << ": empty event");
        // Header (kind@time[+duration]) is everything before the
        // first ':'; the parameter list follows it.
        const auto colon = item.find(':');
        const std::string header =
            colon == std::string::npos ? item : item.substr(0, colon);
        const std::string params =
            colon == std::string::npos ? "" : item.substr(colon + 1);

        const auto at_pos = header.find('@');
        if (at_pos == std::string::npos || at_pos == 0)
            THEMIS_FATAL("--faults event "
                         << ordinal << ": '" << item
                         << "' is missing 'kind@time'");
        EventContext ctx{ordinal, toLower(header.substr(0, at_pos))};
        std::string when = header.substr(at_pos + 1);

        TimeNs duration = -1.0;
        // '+' introduces the window, but scientific notation also
        // contains '+' (1e+6): only split on a '+' not preceded by
        // 'e'/'E'.
        for (std::size_t p = 0; p < when.size(); ++p) {
            if (when[p] == '+' && p > 0 && when[p - 1] != 'e' &&
                when[p - 1] != 'E') {
                duration = parseNumberField(ctx, "duration",
                                            when.substr(p + 1));
                when = when.substr(0, p);
                break;
            }
        }
        const TimeNs start = parseNumberField(ctx, "time", when);
        if (start < 0.0)
            fieldError(ctx, "time", "must be >= 0");

        int dim = -1;
        int index = -1;
        double factor = -1.0;
        int flaps = -1;
        TimeNs down = -1.0;
        std::uint64_t seed = 0x7e315c0dULL;
        bool has_seed = false;
        for (const auto& [key, value] : parseParams(ctx, params)) {
            if (key == "dim") {
                dim = parseIntField(ctx, key, value);
            } else if (key == "index") {
                index = parseIntField(ctx, key, value);
                if (index < 0)
                    fieldError(ctx, key, "must be >= 0");
            } else if (key == "factor") {
                factor = parseNumberField(ctx, key, value);
            } else if (key == "flaps") {
                flaps = parseIntField(ctx, key, value);
            } else if (key == "down") {
                down = parseNumberField(ctx, key, value);
            } else if (key == "seed") {
                const double s = parseNumberField(ctx, key, value);
                if (s < 0.0 || s != std::floor(s))
                    fieldError(ctx, key, "must be a non-negative "
                                         "integer");
                seed = static_cast<std::uint64_t>(s);
                has_seed = true;
            } else {
                fieldError(ctx, key, "unknown field");
            }
        }
        if (dim < 0)
            fieldError(ctx, "dim",
                       "required (non-negative dimension index)");

        const auto requireFactor = [&] {
            if (factor < 0.0)
                fieldError(ctx, "factor", "required");
            if (!(factor > 0.0))
                fieldError(ctx, "factor", "must be positive");
        };
        const auto requireDuration = [&](const char* what) {
            if (duration < 0.0)
                fieldError(ctx, "duration",
                           std::string("required ('@T+D' ") + what +
                               ")");
            if (!(duration > 0.0))
                fieldError(ctx, "duration", "must be positive");
        };

        if (index >= 0 && ctx.kind != "link")
            fieldError(ctx, "index",
                       "only link events take a link index");

        if (ctx.kind == "degrade") {
            requireDuration("degrade window");
            requireFactor();
            if (factor >= 1.0)
                fieldError(ctx, "factor",
                           "degrade must shrink capacity (factor < 1); "
                           "use straggler for permanent scaling");
            tl.addDegrade(dim, start, duration, factor);
        } else if (ctx.kind == "straggler") {
            if (duration >= 0.0)
                fieldError(ctx, "duration",
                           "straggler is permanent; no '+duration'");
            requireFactor();
            tl.addStraggler(dim, start, factor);
        } else if (ctx.kind == "flap") {
            requireDuration("down window");
            if (factor >= 0.0)
                fieldError(ctx, "factor", "flap takes no factor");
            tl.addFlap(dim, start, duration);
        } else if (ctx.kind == "link") {
            requireDuration("down window");
            if (factor >= 0.0)
                fieldError(ctx, "factor", "link takes no factor");
            if (index < 0)
                fieldError(ctx, "index",
                           "required (link index within the dim)");
            tl.addLinkFlap(dim, index, start, duration);
        } else if (ctx.kind == "storm") {
            requireDuration("storm window");
            if (flaps < 0)
                fieldError(ctx, "flaps", "required");
            if (down < 0.0)
                fieldError(ctx, "down", "required (flap length, ns)");
            if (!(down > 0.0))
                fieldError(ctx, "down", "must be positive");
            (void)has_seed;
            Rng rng(seed);
            tl.addFlapStorm(dim, start, duration, flaps, down, rng);
        } else {
            THEMIS_FATAL("--faults event "
                         << ordinal << ": unknown kind '" << ctx.kind
                         << "' (degrade|straggler|flap|link|storm)");
        }
    }
    if (tl.empty())
        THEMIS_FATAL("--faults: spec '" << spec << "' has no events");
    return tl;
}

int
FaultTimeline::maxDim() const
{
    int max_dim = -1;
    for (const FaultEvent& e : events_)
        max_dim = std::max(max_dim, e.dim);
    return max_dim;
}

void
FaultTimeline::validateForDims(int num_dims) const
{
    for (const FaultEvent& e : events_)
        if (e.dim >= num_dims)
            THEMIS_FATAL("--faults: event at t="
                         << e.at << " (" << faultKindName(e.kind)
                         << ") targets dim " << e.dim
                         << " but the topology has only " << num_dims
                         << " dimensions");
}

void
FaultTimeline::validateLinks(const std::vector<int>& links_per_dim) const
{
    for (const FaultEvent& e : events_) {
        if (e.link < 0)
            continue;
        const auto d = static_cast<std::size_t>(e.dim);
        const int links = d < links_per_dim.size() ? links_per_dim[d] : 0;
        if (e.link >= links)
            THEMIS_FATAL("--faults: event at t="
                         << e.at << " (" << faultKindName(e.kind)
                         << ") targets link " << e.link << " but dim "
                         << e.dim << " has only " << links
                         << " link(s) per NPU");
    }
}

TimeNs
FaultTimeline::nextEventAtOrAfter(TimeNs t) const
{
    const auto it = std::lower_bound(
        events_.begin(), events_.end(), t,
        [](const FaultEvent& x, TimeNs v) { return x.at < v; });
    if (it == events_.end())
        return std::numeric_limits<TimeNs>::infinity();
    return it->at;
}

TimeNs
FaultTimeline::nextEventAfter(TimeNs t) const
{
    const auto it = std::upper_bound(
        events_.begin(), events_.end(), t,
        [](TimeNs v, const FaultEvent& x) { return v < x.at; });
    if (it == events_.end())
        return std::numeric_limits<TimeNs>::infinity();
    return it->at;
}

std::string
FaultTimeline::describe() const
{
    std::unordered_set<int> dims;
    for (const FaultEvent& e : events_)
        dims.insert(e.dim);
    std::ostringstream oss;
    oss << events_.size() << " fault events on " << dims.size()
        << " dim" << (dims.size() == 1 ? "" : "s");
    return oss.str();
}

} // namespace themis::sim
