#include "sim/event_queue.hpp"

#include <algorithm>

namespace themis::sim {

namespace {

/** Initial calendar geometry; re-adapted as the population grows. */
constexpr std::size_t kInitialBuckets = 64; // power of two
constexpr double kInitialWidth = 100.0;     // ns

/** Bucket-width clamp: below 1e-3 ns nothing is resolvable (the
 *  simulation's own time sliver), above 1e12 ns a single bucket spans
 *  more than any modelled horizon. */
constexpr double kMinWidth = 1e-3;
constexpr double kMaxWidth = 1e12;

/** Calendar population triggers: grow past 2 entries/bucket, shrink
 *  below 1/8 entry/bucket. Far apart so adaptation cannot thrash. */
constexpr std::size_t kGrowFactor = 2;
constexpr std::size_t kShrinkDivisor = 8;

/** Width estimation samples this many earliest entries (Brown '88
 *  samples near the head: the local event density is what the scan
 *  pays for, not the global span). */
constexpr std::size_t kWidthSample = 64;

/** At or below this population a direct scan over all stored entries
 *  beats bucket hashing — and sidesteps the degenerate case where one
 *  far-future event makes every pop wrap the whole year. */
constexpr std::size_t kSparseScan = 4;

std::size_t
nextPow2(std::size_t v)
{
    std::size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

const char*
eventFrontEndName(EventFrontEnd front_end)
{
    switch (front_end) {
      case EventFrontEnd::Calendar: return "calendar";
      case EventFrontEnd::Heap:     return "heap";
    }
    THEMIS_PANIC("unknown EventFrontEnd "
                 << static_cast<int>(front_end));
}

EventQueue::EventQueue(EventFrontEnd front_end) : front_end_(front_end)
{
    calInit();
}

void
EventQueue::calInit()
{
    buckets_.assign(kInitialBuckets, {});
    width_ = kInitialWidth;
    cur_win_ = 0;
    cal_count_ = 0;
    peek_valid_ = false;
}

std::uint32_t
EventQueue::allocSlot()
{
    if (free_head_ != kNoSlot) {
        const std::uint32_t idx = free_head_;
        free_head_ = slots_[idx].next_free;
        slots_[idx].next_free = kNoSlot;
        return idx;
    }
    THEMIS_ASSERT(slots_.size() < kNoSlot, "event slab exhausted");
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
}

void
EventQueue::releaseSlot(std::uint32_t idx)
{
    Slot& slot = slots_[idx];
    slot.invoke = nullptr;
    slot.relocate = nullptr;
    slot.destroy = nullptr;
    ++slot.generation; // stale ids and pending entries now miss
    slot.next_free = free_head_;
    slot.cal_bucket = kNoSlot;
    free_head_ = idx;
}

void
EventQueue::releaseAll()
{
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
        Slot& slot = slots_[i];
        if (slot.invoke != nullptr) {
            slot.destroy(slot.storage);
            releaseSlot(i);
        }
    }
    live_events_ = 0;
}

void
EventQueue::cancel(EventId id)
{
    if (id == 0)
        return;
    const std::uint64_t high = id >> 32;
    if (high == 0 || high > slots_.size())
        return;
    const auto idx = static_cast<std::uint32_t>(high - 1);
    const auto generation = static_cast<std::uint32_t>(id);
    Slot& slot = slots_[idx];
    if (slot.invoke == nullptr || slot.generation != generation)
        return; // already fired/cancelled (or slot since recycled)
    // Calendar entries carry a back-pointer, so the pending entry is
    // removed eagerly in O(1); heap entries are discarded lazily when
    // a peek reaches them.
    if (front_end_ == EventFrontEnd::Calendar &&
        slot.cal_bucket != kNoSlot) {
        calRemoveAt(slot.cal_bucket, slot.cal_pos);
        peek_valid_ = false;
    }
    slot.destroy(slot.storage);
    releaseSlot(idx);
    --live_events_;
}

std::uint64_t
EventQueue::windowOf(TimeNs when) const
{
    const double q = when / width_;
    // Times are nanoseconds and width_ >= 1e-3, so q fits u64 for any
    // horizon the simulator can represent; clamp defensively anyway.
    if (q >= 9.0e18)
        return static_cast<std::uint64_t>(9.0e18);
    return q <= 0.0 ? 0 : static_cast<std::uint64_t>(q);
}

void
EventQueue::pushEntry(const Entry& e)
{
    if (front_end_ == EventFrontEnd::Heap) {
        heap_.push(e);
        return;
    }
    calPush(e);
}

void
EventQueue::calPlace(std::uint32_t bucket_idx, const Entry& e)
{
    auto& bucket = buckets_[bucket_idx];
    Slot& slot = slots_[e.slot];
    slot.cal_bucket = bucket_idx;
    slot.cal_pos = static_cast<std::uint32_t>(bucket.size());
    bucket.push_back(e);
    ++cal_count_;
}

void
EventQueue::calRemoveAt(std::uint32_t bucket_idx, std::size_t pos)
{
    auto& bucket = buckets_[bucket_idx];
    THEMIS_ASSERT(pos < bucket.size(),
                  "calendar back-pointer out of range");
    slots_[bucket[pos].slot].cal_bucket = kNoSlot;
    if (pos + 1 != bucket.size()) {
        bucket[pos] = bucket.back();
        // In calendar mode no entry outlives its slot, so the moved
        // entry's slot is live and its back-pointer is safe to fix.
        Slot& moved = slots_[bucket[pos].slot];
        moved.cal_bucket = bucket_idx;
        moved.cal_pos = static_cast<std::uint32_t>(pos);
    }
    bucket.pop_back();
    --cal_count_;
}

void
EventQueue::calPush(const Entry& e)
{
    peek_valid_ = false;
    const std::uint64_t win = windowOf(e.when);
    // A handler may schedule an event earlier than the pending set's
    // scan position (now_ can trail cur_win_ after empty-bucket
    // advances); rewind so the scan cannot miss it.
    if (win < cur_win_)
        cur_win_ = win;
    calPlace(static_cast<std::uint32_t>(win & (buckets_.size() - 1)),
             e);
    if (cal_count_ > kGrowFactor * buckets_.size())
        calAdapt();
}

bool
EventQueue::calJumpToMin()
{
    // A whole year scanned without a hit: every stored entry lives in
    // a later year (the width is too small for the current spread).
    // Find the global minimum directly, park the scan there, and
    // re-fit the geometry.
    bool found = false;
    Entry best{0.0, 0, 0, 0};
    for (const auto& bucket : buckets_) {
        for (const Entry& e : bucket) {
            if (!found || e.when < best.when ||
                (e.when == best.when && e.seq < best.seq)) {
                best = e;
                found = true;
            }
        }
    }
    if (!found)
        return false;
    cur_win_ = windowOf(best.when);
    // Re-fit the geometry when the population carries gap
    // information; a lone straggler says nothing about density.
    if (cal_count_ >= 2)
        calAdapt();
    return true;
}

void
EventQueue::calAdapt()
{
    peek_valid_ = false;
    std::vector<Entry> entries;
    entries.reserve(cal_count_);
    for (auto& bucket : buckets_) {
        entries.insert(entries.end(), bucket.begin(), bucket.end());
        bucket.clear();
    }
    cal_count_ = 0;
    if (entries.empty())
        return;

    // Width from the event density near the head (Brown '88): the
    // average gap over the earliest kWidthSample entries, times a
    // spread factor so a bucket holds a few events.
    const std::size_t sample = std::min(entries.size(), kWidthSample);
    std::partial_sort(entries.begin(),
                      entries.begin() + static_cast<long>(sample),
                      entries.end(),
                      [](const Entry& a, const Entry& b) {
                          return a.when < b.when;
                      });
    const double span = entries[sample - 1].when - entries[0].when;
    if (sample > 1 && span > 0.0) {
        width_ = std::clamp(4.0 * span /
                                static_cast<double>(sample - 1),
                            kMinWidth, kMaxWidth);
    }

    const std::size_t nb = nextPow2(
        std::max<std::size_t>(kInitialBuckets, entries.size()));
    if (buckets_.size() != nb)
        buckets_.assign(nb, {});
    for (const Entry& e : entries)
        calPlace(static_cast<std::uint32_t>(windowOf(e.when) &
                                            (nb - 1)),
                 e);
    // entries[0] is the earliest entry after the partial sort.
    cur_win_ = windowOf(entries[0].when);
}

bool
EventQueue::calPeek(Entry& out)
{
    if (cal_count_ == 0)
        return false;
    if (peek_valid_) {
        out = buckets_[peek_bucket_][peek_pos_];
        return true;
    }
    if (buckets_.size() > kInitialBuckets &&
        cal_count_ * kShrinkDivisor < buckets_.size())
        calAdapt();
    if (cal_count_ <= kSparseScan) {
        bool found = false;
        Entry best{0.0, 0, 0, 0};
        std::uint32_t fb = 0;
        std::size_t fp = 0;
        for (std::uint32_t b = 0; b < buckets_.size(); ++b) {
            const auto& bucket = buckets_[b];
            for (std::size_t i = 0; i < bucket.size(); ++i) {
                const Entry& e = bucket[i];
                if (!found || e.when < best.when ||
                    (e.when == best.when && e.seq < best.seq)) {
                    best = e;
                    fb = b;
                    fp = i;
                    found = true;
                }
            }
        }
        THEMIS_ASSERT(found, "calendar count out of sync");
        cur_win_ = windowOf(buckets_[fb][fp].when);
        peek_valid_ = true;
        peek_bucket_ = fb;
        peek_pos_ = fp;
        out = buckets_[fb][fp];
        return true;
    }
    std::size_t scanned = 0;
    while (true) {
        // calJumpToMin can re-bucket mid-scan; re-derive the mask.
        const std::size_t mask = buckets_.size() - 1;
        const auto& bucket = buckets_[cur_win_ & mask];
        bool found = false;
        std::size_t pos = 0;
        for (std::size_t i = 0; i < bucket.size(); ++i) {
            if (windowOf(bucket[i].when) == cur_win_ &&
                (!found || bucket[i].when < bucket[pos].when ||
                 (bucket[i].when == bucket[pos].when &&
                  bucket[i].seq < bucket[pos].seq))) {
                pos = i;
                found = true;
            }
        }
        if (found) {
            peek_valid_ = true;
            peek_bucket_ = cur_win_ & mask;
            peek_pos_ = pos;
            out = bucket[pos];
            return true;
        }
        ++cur_win_;
        if (++scanned > buckets_.size()) {
            if (!calJumpToMin())
                return false;
            scanned = 0; // cur_win_ now holds a live entry's window
        }
    }
}

bool
EventQueue::heapPeek(Entry& out)
{
    while (!heap_.empty()) {
        if (entryStale(heap_.top())) {
            heap_.pop(); // cancelled; discard lazily
            continue;
        }
        out = heap_.top();
        return true;
    }
    return false;
}

bool
EventQueue::peekNext(Entry& out)
{
    if (front_end_ == EventFrontEnd::Heap)
        return heapPeek(out);
    return calPeek(out);
}

void
EventQueue::collectCohortAt(TimeNs when, std::vector<Entry>& cohort)
{
    if (front_end_ == EventFrontEnd::Heap) {
        // Equal-timestamp entries pop in sequence order already.
        while (!heap_.empty() && heap_.top().when == when) {
            if (!entryStale(heap_.top()))
                cohort.push_back(heap_.top());
            heap_.pop();
        }
        return;
    }
    // Same timestamp means same window means same bucket.
    peek_valid_ = false;
    const auto bucket_idx = static_cast<std::uint32_t>(
        windowOf(when) & (buckets_.size() - 1));
    auto& bucket = buckets_[bucket_idx];
    for (std::size_t i = 0; i < bucket.size();) {
        if (bucket[i].when == when) {
            cohort.push_back(bucket[i]);
            calRemoveAt(bucket_idx, i);
            continue; // another entry was swapped into position i
        }
        ++i;
    }
    std::sort(cohort.begin(), cohort.end(),
              [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
}

std::size_t
EventQueue::runCohorts(TimeNs until, bool bounded)
{
    std::size_t fired = 0;
    // Steal the scratch buffer so a handler that re-enters run()
    // (never done today, but harmless) gets a fresh one.
    std::vector<Entry> cohort = std::move(cohort_scratch_);
    Entry head{0.0, 0, 0, 0};
    while (peekNext(head)) {
        if (bounded && head.when > until)
            break;
        cohort.clear();
        collectCohortAt(head.when, cohort);
        now_ = head.when;
        // If a handler throws (sweep jobs legitimately propagate
        // ConfigError through run()), the not-yet-fired remainder of
        // the cohort goes back into the pending store so the queue
        // stays resumable — matching the pre-batching behavior where
        // unfired entries simply stayed queued.
        struct CohortGuard
        {
            EventQueue* queue;
            const std::vector<Entry>* cohort;
            std::size_t next = 0;
            bool armed = true;

            ~CohortGuard()
            {
                if (!armed)
                    return;
                for (std::size_t i = next; i < cohort->size(); ++i) {
                    const Entry& e = (*cohort)[i];
                    // Skip entries an earlier cohort member cancelled:
                    // re-pushing one would write calendar back-pointers
                    // into a freed (possibly reallocated) slot.
                    if (!queue->entryStale(e))
                        queue->pushEntry(e);
                }
            }
        } cohort_guard{this, &cohort};
        for (std::size_t c = 0; c < cohort.size(); ++c) {
            const Entry& e = cohort[c];
            cohort_guard.next = c + 1;
            // Re-check liveness per event: an earlier cohort member's
            // handler may have cancelled this one.
            Slot& slot = slots_[e.slot];
            if (slot.invoke == nullptr || slot.generation != e.generation)
                continue;
            // Move the closure onto the stack before invoking: the
            // handler may schedule events, growing the slab and moving
            // the slot.
            alignas(std::max_align_t) unsigned char local[kInlineCapacity];
            auto* invoke = slot.invoke;
            auto* destroy = slot.destroy;
            slot.relocate(local, slot.storage);
            releaseSlot(e.slot);
            --live_events_;
            // Destroy the local copy even when the handler throws.
            struct Guard
            {
                void (*destroy)(void*);
                void* closure;
                ~Guard() { destroy(closure); }
            } guard{destroy, local};
            invoke(local);
            ++fired;
        }
        cohort_guard.armed = false;
    }
    cohort.clear();
    cohort_scratch_ = std::move(cohort);
    if (bounded && now_ < until)
        now_ = until;
    return fired;
}

std::size_t
EventQueue::run()
{
    return runCohorts(0.0, /*bounded=*/false);
}

std::size_t
EventQueue::runUntil(TimeNs until)
{
    return runCohorts(until, /*bounded=*/true);
}

void
EventQueue::rebaseToZero()
{
    THEMIS_ASSERT(live_events_ == 0,
                  "rebasing a queue with " << live_events_
                                           << " pending events");
    now_ = 0.0;
    // The calendar holds no entries when the queue is empty (cancel
    // removes eagerly, firing removes on collection), so rewinding
    // the scan window suffices. The heap discards cancelled entries
    // lazily, and a tombstone timestamped beyond the epoch horizon
    // would never be popped once the clock rewinds — with no live
    // events every remaining entry is stale, so drop them wholesale.
    heap_ = {};
    cur_win_ = 0;
    peek_valid_ = false;
}

void
EventQueue::reset()
{
    releaseAll();
    heap_ = {};
    slots_.clear();
    free_head_ = kNoSlot;
    now_ = 0.0;
    next_seq_ = 1;
    calInit();
    cohort_scratch_.clear();
}

} // namespace themis::sim
