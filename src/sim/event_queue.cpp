#include "sim/event_queue.hpp"

namespace themis::sim {

std::uint32_t
EventQueue::allocSlot()
{
    if (free_head_ != kNoSlot) {
        const std::uint32_t idx = free_head_;
        free_head_ = slots_[idx].next_free;
        slots_[idx].next_free = kNoSlot;
        return idx;
    }
    THEMIS_ASSERT(slots_.size() < kNoSlot, "event slab exhausted");
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
}

void
EventQueue::releaseSlot(std::uint32_t idx)
{
    Slot& slot = slots_[idx];
    slot.invoke = nullptr;
    slot.relocate = nullptr;
    slot.destroy = nullptr;
    ++slot.generation; // stale ids and heap entries now miss
    slot.next_free = free_head_;
    free_head_ = idx;
}

void
EventQueue::releaseAll()
{
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
        Slot& slot = slots_[i];
        if (slot.invoke != nullptr) {
            slot.destroy(slot.storage);
            releaseSlot(i);
        }
    }
    live_events_ = 0;
}

void
EventQueue::cancel(EventId id)
{
    if (id == 0)
        return;
    const std::uint64_t high = id >> 32;
    if (high == 0 || high > slots_.size())
        return;
    const auto idx = static_cast<std::uint32_t>(high - 1);
    const auto generation = static_cast<std::uint32_t>(id);
    Slot& slot = slots_[idx];
    if (slot.invoke == nullptr || slot.generation != generation)
        return; // already fired/cancelled (or slot since recycled)
    slot.destroy(slot.storage);
    releaseSlot(idx);
    --live_events_;
    // The heap entry stays; pops skip entries whose generation is stale.
}

bool
EventQueue::fireNext()
{
    while (!heap_.empty()) {
        const Entry top = heap_.top();
        Slot& slot = slots_[top.slot];
        if (slot.invoke == nullptr || slot.generation != top.generation) {
            heap_.pop(); // cancelled; discard lazily
            continue;
        }
        heap_.pop();
        // Move the closure onto the stack before invoking: the handler
        // may schedule events, growing the slab and moving the slot.
        alignas(std::max_align_t) unsigned char local[kInlineCapacity];
        auto* invoke = slot.invoke;
        auto* destroy = slot.destroy;
        slot.relocate(local, slot.storage);
        releaseSlot(top.slot);
        --live_events_;
        now_ = top.when;
        // Destroy the local copy even when the handler throws (sweep
        // jobs legitimately propagate ConfigError through run()).
        struct Guard
        {
            void (*destroy)(void*);
            void* closure;
            ~Guard() { destroy(closure); }
        } guard{destroy, local};
        invoke(local);
        return true;
    }
    return false;
}

std::size_t
EventQueue::run()
{
    std::size_t fired = 0;
    while (fireNext())
        ++fired;
    return fired;
}

std::size_t
EventQueue::runUntil(TimeNs until)
{
    std::size_t fired = 0;
    while (!heap_.empty()) {
        // Peek the next live event without firing past `until`.
        const Entry top = heap_.top();
        const Slot& slot = slots_[top.slot];
        if (slot.invoke == nullptr || slot.generation != top.generation) {
            heap_.pop();
            continue;
        }
        if (top.when > until)
            break;
        if (fireNext())
            ++fired;
    }
    if (now_ < until)
        now_ = until;
    return fired;
}

void
EventQueue::reset()
{
    releaseAll();
    heap_ = {};
    slots_.clear();
    free_head_ = kNoSlot;
    now_ = 0.0;
    next_seq_ = 1;
}

} // namespace themis::sim
