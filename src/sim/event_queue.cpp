#include "sim/event_queue.hpp"

#include "common/error.hpp"

namespace themis::sim {

EventQueue::EventId
EventQueue::schedule(TimeNs when, Handler handler)
{
    THEMIS_ASSERT(when >= now_ - 1e-9,
                  "scheduling into the past: when=" << when
                                                    << " now=" << now_);
    THEMIS_ASSERT(handler, "null event handler");
    const EventId id = next_id_++;
    heap_.push(Entry{when < now_ ? now_ : when, id});
    handlers_.emplace(id, std::move(handler));
    ++live_events_;
    return id;
}

EventQueue::EventId
EventQueue::scheduleAfter(TimeNs delay, Handler handler)
{
    THEMIS_ASSERT(delay >= 0.0, "negative delay " << delay);
    return schedule(now_ + delay, std::move(handler));
}

void
EventQueue::cancel(EventId id)
{
    auto it = handlers_.find(id);
    if (it == handlers_.end())
        return;
    handlers_.erase(it);
    --live_events_;
    // The heap entry stays; fireNext() skips ids with no handler.
}

bool
EventQueue::fireNext()
{
    while (!heap_.empty()) {
        const Entry top = heap_.top();
        auto it = handlers_.find(top.id);
        if (it == handlers_.end()) {
            heap_.pop(); // cancelled; discard lazily
            continue;
        }
        heap_.pop();
        Handler handler = std::move(it->second);
        handlers_.erase(it);
        --live_events_;
        now_ = top.when;
        handler();
        return true;
    }
    return false;
}

std::size_t
EventQueue::run()
{
    std::size_t fired = 0;
    while (fireNext())
        ++fired;
    return fired;
}

std::size_t
EventQueue::runUntil(TimeNs until)
{
    std::size_t fired = 0;
    while (!heap_.empty()) {
        // Peek the next live event without firing past `until`.
        Entry top = heap_.top();
        if (handlers_.find(top.id) == handlers_.end()) {
            heap_.pop();
            continue;
        }
        if (top.when > until)
            break;
        if (fireNext())
            ++fired;
    }
    if (now_ < until)
        now_ = until;
    return fired;
}

void
EventQueue::reset()
{
    heap_ = {};
    handlers_.clear();
    live_events_ = 0;
    now_ = 0.0;
    next_id_ = 1;
}

} // namespace themis::sim
