/**
 * @file
 * Append-only per-cell results store for sharded, resumable sweeps.
 *
 * One store is a JSON-lines journal: every completed grid cell (or
 * --serve query) appends exactly one self-contained record — its
 * canonical config key, named result values, a result fingerprint,
 * and the wall time the evaluation took — followed by a flush, so a
 * crash loses at most the record being written. On open the store
 * replays the journal: complete records index by key (restart skips
 * them — checkpoint/restart), and a partially-written last record
 * (no trailing newline, or bytes that do not parse back) is detected
 * and truncated away before the first new append, so an interrupted
 * run resumes to a byte-identical journal state.
 *
 * Records round-trip doubles exactly ("%.17g" — 17 significant digits
 * reproduce any IEEE double bit pattern), which is what lets the
 * merge of N shard journals be compared *byte-equal* against a
 * 1-process run: canonicalBytes()/canonicalMerge() serialize records
 * sorted by key with the volatile wall-time field dropped, so two
 * runs that simulated the same cells to the same results produce the
 * same canonical bytes regardless of process count, worker threads,
 * completion order, or wall clock.
 */

#ifndef THEMIS_SIM_RESULT_STORE_HPP
#define THEMIS_SIM_RESULT_STORE_HPP

#include <cstdint>
#include <fstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace themis::sim {

/** One completed evaluation: a key plus named result values. */
struct ResultRecord
{
    /** Canonical config key (see makeResultKey). */
    std::string key;

    /** Named result values, in a producer-fixed order. */
    std::vector<std::pair<std::string, double>> values;

    /** Result fingerprint (e.g. an epoch FNV-1a; 0 when unused). */
    std::uint64_t fingerprint = 0;

    /** Wall time of the evaluation; volatile, never canonical. */
    double wall_ms = 0.0;

    /** Value by name; nullptr when absent. */
    const double* value(const std::string& name) const;
};

/**
 * Canonical config key from key=value pairs: pairs sorted by name and
 * joined with ';' ("chunks=8;sched=scf;topo=2D-SW_SW"). Names and
 * values must not contain ';' or '='. The single key constructor used
 * by grid cells, --serve queries and tests, so a --serve lookup hits
 * the record a sharded grid wrote.
 */
std::string
makeResultKey(std::vector<std::pair<std::string, std::string>> pairs);

/**
 * Serialize @p rec as one JSON line (no trailing newline).
 * @p include_wall selects the journal form; the canonical form drops
 * wall_ms so result bytes are run-invariant.
 */
std::string serializeRecord(const ResultRecord& rec, bool include_wall);

/** Parse a journal line; false (out untouched) on malformed input. */
bool parseRecord(const std::string& line, ResultRecord& out);

/** Append-only journal of ResultRecords; see file comment. */
class ResultStore
{
  public:
    /**
     * Open (creating parent directories as needed) and replay the
     * journal at @p path. A partially-written trailing record is
     * dropped and the file truncated to the last complete record
     * before the first append.
     */
    explicit ResultStore(std::string path);

    ResultStore(const ResultStore&) = delete;
    ResultStore& operator=(const ResultStore&) = delete;

    const std::string& path() const { return path_; }

    /** Records recovered + appended, in journal order. */
    const std::vector<ResultRecord>& records() const
    {
        return records_;
    }

    std::size_t size() const { return records_.size(); }

    /** True when a record for @p key is present (restart skip test). */
    bool has(const std::string& key) const;

    /** Record for @p key, or nullptr. */
    const ResultRecord* find(const std::string& key) const;

    /**
     * Append one record and flush it to disk. Duplicate keys are a
     * caller bug (resume must skip recorded cells) and panic.
     */
    void append(ResultRecord rec);

    /** True when open() found and discarded a truncated tail. */
    bool recoveredTruncatedTail() const
    {
        return recovered_truncated_;
    }

    /** Canonical bytes of this store (sorted by key, wall-free). */
    std::string canonicalBytes() const;

    /**
     * Canonical bytes of the union of the journals at @p paths —
     * byte-equal to the canonicalBytes() of a 1-process store that
     * simulated the same cells. Duplicate keys across journals must
     * carry bit-identical results (ConfigError otherwise: shards are
     * disjoint by construction, so a conflicting duplicate means the
     * inputs are not shards of one grid).
     */
    static std::string
    canonicalMerge(const std::vector<std::string>& paths);

  private:
    std::string path_;
    std::vector<ResultRecord> records_;
    std::unordered_map<std::string, std::size_t> index_;
    bool recovered_truncated_ = false;
    /** Journal byte length of the valid prefix at open time. */
    std::uint64_t valid_bytes_ = 0;
    /** Lazily opened append stream (truncates the bad tail first). */
    std::ofstream out_;
    bool out_open_ = false;
};

} // namespace themis::sim

#endif // THEMIS_SIM_RESULT_STORE_HPP
