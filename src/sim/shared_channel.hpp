/**
 * @file
 * Processor-sharing bandwidth resource.
 *
 * Models one network dimension's aggregate per-NPU bandwidth as a
 * fluid server: all active transfers progress simultaneously, each
 * receiving a share of the capacity proportional to its *flow weight*
 * (ASTRA-sim's analytical backend uses the same fluid abstraction,
 * with equal shares). Latency phases of collective steps are NOT
 * modelled here — callers wait out fixed delays with plain timer
 * events and only occupy the channel for the byte-transfer part,
 * which is what lets concurrent chunks hide each other's step
 * latencies (paper Sec 4.3).
 *
 * Internally this is the standard *weighted* GPS virtual-time
 * formulation: the channel tracks the cumulative per-unit-weight
 * service V (in "virtual bytes" — bytes a weight-1 transfer active
 * since t0 would have received by now; V advances at capacity /
 * sum-of-active-weights). A transfer beginning at virtual time V with
 * B bytes and weight w finishes exactly when V reaches V + B/w, so
 * each transfer is keyed by its finish point in virtual time in a
 * min-heap. Advancing the clock updates one scalar (O(1));
 * begin/abort/completion touch only the heap (O(log n)) — nothing
 * ever iterates the active set. With every weight equal to 1 the
 * arithmetic reduces term-for-term to the egalitarian formulation
 * (the weight sum of n unit flows is exactly the integer n in
 * double precision), so results are bit-identical to the
 * pre-priority channel; ChannelFairness::Egalitarian keeps the
 * literal count-based expressions in the same binary as a
 * measurement/equivalence baseline.
 *
 * Because only differences (v_end - V) carry meaning, the channel
 * periodically *rebases* virtual time: once V exceeds 1e9 virtual
 * bytes it is subtracted from V and from every pending finish point,
 * keeping the drain epsilons above double-precision ulp no matter how
 * much cumulative service a long sweep accumulates. Rebasing shifts
 * finish points uniformly, so it is weight-agnostic by construction.
 *
 * Per-class accounting: every transfer carries a small non-negative
 * class index (a priority tier); the channel tracks progressed bytes
 * and busy time (>= 1 active transfer of the class) per class, which
 * is what the stats layer turns into per-class utilization columns.
 */

#ifndef THEMIS_SIM_SHARED_CHANNEL_HPP
#define THEMIS_SIM_SHARED_CHANNEL_HPP

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/small_vector.hpp"
#include "common/units.hpp"
#include "sim/event_queue.hpp"
#include "stats/telemetry/metrics.hpp"

namespace themis::sim {

/**
 * Fluid-model fairness discipline. Weighted is the native
 * formulation; Egalitarian is the pre-priority equal-share path
 * (weights must all be 1), retained so equivalence tests and benches
 * can compare both in one binary.
 */
enum class ChannelFairness {
    Weighted,
    Egalitarian,
};

/**
 * Fluid-model shared link implementing weighted processor sharing:
 * with active weights w_i each transfer runs at capacity * w_i /
 * sum(w_j).
 *
 * Also accumulates the statistics utilization tracking needs: total
 * and per-class progressed bytes and busy time.
 */
class SharedChannel
{
  public:
    /** Handle for an in-flight transfer. 0 is never issued. */
    using TransferId = std::uint64_t;

    /** Invoked (at completion time) when a transfer's bytes drain. */
    using Callback = std::function<void()>;

    /**
     * Invoked when a transfer FAILS (link flap via failActive()); the
     * argument is the untransferred remainder in bytes. Partial
     * progress stays accounted in progressedBytes() — those wire
     * bytes really moved — and the caller is expected to retry the
     * whole transfer.
     */
    using FailCallback = std::function<void(Bytes remaining)>;

    /**
     * @param queue    event queue driving this channel
     * @param capacity aggregate bandwidth in bytes/ns (> 0)
     * @param fairness sharing discipline (see ChannelFairness)
     */
    SharedChannel(EventQueue& queue, Bandwidth capacity,
                  ChannelFairness fairness = ChannelFairness::Weighted);

    SharedChannel(const SharedChannel&) = delete;
    SharedChannel& operator=(const SharedChannel&) = delete;

    /**
     * Begin transferring @p bytes at unit weight in class 0;
     * @p on_done fires when they drain. Zero-byte transfers complete
     * via an immediate (same-time) event.
     */
    TransferId begin(Bytes bytes, Callback on_done);

    /**
     * Begin transferring @p bytes at @p weight (> 0) in priority
     * class @p priority_class (>= 0, small). Egalitarian channels
     * accept unit weights only.
     */
    TransferId begin(Bytes bytes, double weight, Callback on_done,
                     int priority_class = 0,
                     FailCallback on_fail = nullptr);

    /** Abort an in-flight transfer; its callback never fires. */
    void abort(TransferId id);

    /**
     * Step the channel capacity to @p bw (> 0) at time @p t (the
     * queue's current time). Progress is settled under the old
     * capacity up to @p t, then the virtual clock is rebased — the
     * same uniform finish-point shift as the periodic 1e9-vbyte
     * rebase — so drain epsilons stay anchored near zero across
     * arbitrarily many capacity steps. Finish points in virtual time
     * are capacity-independent, so exact byte conservation holds
     * across the step by construction; only completion ETAs change.
     */
    void setCapacity(TimeNs t, Bandwidth bw);

    /**
     * Fail every in-flight transfer (link flap): partial progress is
     * settled into the progress accounts, the untransferred remainder
     * is dropped, and each transfer's FailCallback fires (in begin
     * order) with that remainder. Every active transfer must have
     * been begun with a FailCallback (asserted) — flapping a link
     * whose users cannot retry is a wiring bug, not a scenario.
     * @return number of transfers failed.
     */
    std::size_t failActive();

    /** Number of currently active transfers. */
    std::size_t activeCount() const { return active_.size(); }

    /** Configured capacity (bytes/ns). */
    Bandwidth capacity() const { return capacity_; }

    /** Configured fairness discipline. */
    ChannelFairness fairness() const { return fairness_; }

    /**
     * Total bytes progressed so far (including partial progress of
     * in-flight transfers), up to the last sync point. Call sync()
     * first when sampling at an arbitrary time.
     */
    Bytes progressedBytes() const { return progressed_bytes_; }

    /** Total time with at least one active transfer, up to last sync. */
    TimeNs busyTime() const { return busy_time_; }

    /**
     * One past the largest class index currently tracked (0 when no
     * class is). Retiring the top class lowers it, so dense
     * [0, numClasses()) iteration keeps working for single-workload
     * runs while long-lived multi-tenant runtimes stay bounded.
     */
    int numClasses() const;

    /** Class indices currently tracked, ascending (O(classes) sort). */
    std::vector<int> classIds() const;

    /** Number of classes currently tracked (O(active jobs) proof). */
    std::size_t trackedClassCount() const { return classes_.size(); }

    /**
     * Retire one class's accounting: its progressed/busy accumulators
     * are dropped so a runtime hosting job churn stays O(active jobs),
     * not O(all-ever-seen). Requires the class to be idle (asserts no
     * active transfer); a later begin() in the same class index simply
     * starts fresh accounts. No-op for a never-seen class.
     */
    void retireClass(int cls);

    /** Bytes progressed by class @p cls, up to last sync (0 if unseen). */
    Bytes classProgressedBytes(int cls) const;

    /** Time with >= 1 active class-@p cls transfer, up to last sync. */
    TimeNs classBusyTime(int cls) const;

    /** Largest concurrent transfer count seen so far. */
    std::size_t peakActiveCount() const { return peak_active_; }

    /** Bring progress accounting up to the queue's current time. */
    void sync() { advanceTo(queue_.now()); }

    /**
     * Iteration-epoch reset: rebase the channel clock to the queue's
     * (just-rebased) current time, zero the virtual clock and every
     * progress accumulator, and drop stale heap entries. Requires an
     * idle channel (asserts no active transfers). After this call the
     * channel's dynamic state is identical to a freshly constructed
     * one except for next_id_ and peak_active_, neither of which
     * influences transfer timing — which is what makes steady-state
     * training iterations bit-identical and the per-epoch progressed
     * byte counters bit-stable across iterations.
     */
    void epochReset();

    /**
     * Publish this channel's progress accounting as gauges under
     * `<prefix>.` dotted names (telemetry snapshot; pure observer —
     * does not sync, so callers snapshot a consistent time).
     */
    void publishMetrics(stats::telemetry::MetricsRegistry& registry,
                        const std::string& prefix) const;

  private:
    /**
     * Map payload for a live transfer: presence in active_ is the
     * liveness test for heap entries, so this is the callback plus
     * the flow parameters needed to settle its accounts — the finish
     * point lives solely in the heap's FinishEntry.
     */
    struct Transfer
    {
        Callback on_done;
        double weight = 1.0;
        int cls = 0;
        FailCallback on_fail; ///< set when the caller can retry
    };

    /** Per-class aggregates; index = priority class. */
    struct ClassState
    {
        double weight_sum = 0.0;
        std::size_t active = 0;
        Bytes progressed = 0.0;
        TimeNs busy = 0.0;
    };

    /** Min-heap entry; ties in v_end break by id (= begin order). */
    struct FinishEntry
    {
        double v_end;
        TransferId id;
    };

    struct FinishLater
    {
        bool
        operator()(const FinishEntry& a, const FinishEntry& b) const
        {
            if (a.v_end != b.v_end)
                return a.v_end > b.v_end;
            return a.id > b.id;
        }
    };

    void advanceTo(TimeNs t);
    void reschedule();
    void onCompletionEvent();
    /** Drop aborted entries off the heap top; true if a live one remains. */
    bool dropStaleTop();
    /** Shift vtime_ (and all finish points) back toward zero. */
    void maybeRebase();
    /** Unconditional variant, used at capacity steps. */
    void rebaseNow();
    void heapPush(FinishEntry entry);
    void heapPop();
    /** Virtual-time rate capacity / total weight (egalitarian: /n). */
    double virtualRate() const;
    ClassState& classState(int cls);
    /** Remove one transfer's weight from the aggregates. */
    void dropWeight(const Transfer& t);

    EventQueue& queue_;
    Bandwidth capacity_;
    ChannelFairness fairness_;
    std::unordered_map<TransferId, Transfer> active_;
    /**
     * Min-heap on (v_end, id) via std::push_heap/pop_heap — a
     * contiguous buffer so virtual-time rebasing can shift every
     * pending finish point in one batch. Inline small-vector: a
     * dimension rarely carries more than a handful of concurrent
     * transfers, so rebase batches of <= 16 entries (the common
     * case by far) touch only inline storage and the channel never
     * heap-allocates for its pending set.
     */
    SmallVector<FinishEntry, 16> finish_heap_;
    double vtime_ = 0.0; // cumulative unit-weight service, virtual bytes
    /** Sum of active weights; exact (integer-valued) when weights are 1. */
    double weight_sum_ = 0.0;
    /**
     * Per-class accounts, keyed by class index. A hash map rather
     * than a dense vector: cluster jobs stride the class space
     * (accountingClass()), so after 1k short tenants churn through a
     * fabric a dense vector would hold thousands of dead entries and
     * every advanceTo() would walk them. retireClass() erases
     * departed tenants, keeping this O(active jobs).
     */
    std::unordered_map<int, ClassState> classes_;
    /**
     * Classes with >= 1 active transfer right now — the only ones
     * advanceTo() must touch. Each class's accumulators are advanced
     * independently, so the (insertion) order of this list cannot
     * affect any accounted value.
     */
    SmallVector<int, 8> busy_classes_;
    TransferId next_id_ = 1;
    TimeNs last_update_ = 0.0;
    EventQueue::EventId pending_event_ = 0;
    Bytes progressed_bytes_ = 0.0;
    TimeNs busy_time_ = 0.0;
    std::size_t peak_active_ = 0;
};

} // namespace themis::sim

#endif // THEMIS_SIM_SHARED_CHANNEL_HPP
