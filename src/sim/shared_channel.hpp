/**
 * @file
 * Processor-sharing bandwidth resource.
 *
 * Models one network dimension's aggregate per-NPU bandwidth as a fluid
 * server: all active transfers progress simultaneously, each receiving
 * an equal share of the capacity (ASTRA-sim's analytical backend uses
 * the same fluid abstraction). Latency phases of collective steps are
 * NOT modelled here — callers wait out fixed delays with plain timer
 * events and only occupy the channel for the byte-transfer part, which
 * is what lets concurrent chunks hide each other's step latencies
 * (paper Sec 4.3).
 *
 * Internally this is the standard GPS virtual-time formulation: the
 * channel tracks the cumulative equal-share service V (in "virtual
 * bytes" — bytes every transfer active since t0 would have received by
 * now). A transfer beginning at virtual time V with B bytes finishes
 * exactly when V reaches V+B, so each transfer is keyed by its finish
 * point in virtual time in a min-heap. Advancing the clock updates one
 * scalar (O(1)); begin/abort/completion touch only the heap (O(log n))
 * — nothing ever iterates the active set.
 *
 * Because only differences (v_end - V) carry meaning, the channel
 * periodically *rebases* virtual time: once V exceeds 1e9 virtual
 * bytes it is subtracted from V and from every pending finish point,
 * keeping the drain epsilons above double-precision ulp no matter how
 * much cumulative service a long sweep accumulates.
 */

#ifndef THEMIS_SIM_SHARED_CHANNEL_HPP
#define THEMIS_SIM_SHARED_CHANNEL_HPP

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "sim/event_queue.hpp"

namespace themis::sim {

/**
 * Fluid-model shared link. Fairness is egalitarian processor sharing:
 * with n active transfers each runs at capacity/n.
 *
 * Also accumulates the statistics utilization tracking needs: total
 * progressed bytes and total busy time (>= 1 active transfer).
 */
class SharedChannel
{
  public:
    /** Handle for an in-flight transfer. 0 is never issued. */
    using TransferId = std::uint64_t;

    /** Invoked (at completion time) when a transfer's bytes drain. */
    using Callback = std::function<void()>;

    /**
     * @param queue   event queue driving this channel
     * @param capacity aggregate bandwidth in bytes/ns (> 0)
     */
    SharedChannel(EventQueue& queue, Bandwidth capacity);

    SharedChannel(const SharedChannel&) = delete;
    SharedChannel& operator=(const SharedChannel&) = delete;

    /**
     * Begin transferring @p bytes; @p on_done fires when they drain.
     * Zero-byte transfers complete via an immediate (same-time) event.
     */
    TransferId begin(Bytes bytes, Callback on_done);

    /** Abort an in-flight transfer; its callback never fires. */
    void abort(TransferId id);

    /** Number of currently active transfers. */
    std::size_t activeCount() const { return active_.size(); }

    /** Configured capacity (bytes/ns). */
    Bandwidth capacity() const { return capacity_; }

    /**
     * Total bytes progressed so far (including partial progress of
     * in-flight transfers), up to the last sync point. Call sync()
     * first when sampling at an arbitrary time.
     */
    Bytes progressedBytes() const { return progressed_bytes_; }

    /** Total time with at least one active transfer, up to last sync. */
    TimeNs busyTime() const { return busy_time_; }

    /** Largest concurrent transfer count seen so far. */
    std::size_t peakActiveCount() const { return peak_active_; }

    /** Bring progress accounting up to the queue's current time. */
    void sync() { advanceTo(queue_.now()); }

  private:
    /**
     * Map payload for a live transfer: presence in active_ is the
     * liveness test for heap entries, so this is just the callback —
     * the finish point lives solely in the heap's FinishEntry.
     */
    struct Transfer
    {
        Callback on_done;
    };

    /** Min-heap entry; ties in v_end break by id (= begin order). */
    struct FinishEntry
    {
        double v_end;
        TransferId id;
    };

    struct FinishLater
    {
        bool
        operator()(const FinishEntry& a, const FinishEntry& b) const
        {
            if (a.v_end != b.v_end)
                return a.v_end > b.v_end;
            return a.id > b.id;
        }
    };

    void advanceTo(TimeNs t);
    void reschedule();
    void onCompletionEvent();
    /** Drop aborted entries off the heap top; true if a live one remains. */
    bool dropStaleTop();
    /** Shift vtime_ (and all finish points) back toward zero. */
    void maybeRebase();
    void heapPush(FinishEntry entry);
    void heapPop();

    EventQueue& queue_;
    Bandwidth capacity_;
    std::unordered_map<TransferId, Transfer> active_;
    /** Min-heap on (v_end, id) via std::push_heap/pop_heap — a plain
     *  vector so rebasing can shift every pending finish point. */
    std::vector<FinishEntry> finish_heap_;
    double vtime_ = 0.0; // cumulative equal-share service, virtual bytes
    TransferId next_id_ = 1;
    TimeNs last_update_ = 0.0;
    EventQueue::EventId pending_event_ = 0;
    Bytes progressed_bytes_ = 0.0;
    TimeNs busy_time_ = 0.0;
    std::size_t peak_active_ = 0;
};

} // namespace themis::sim

#endif // THEMIS_SIM_SHARED_CHANNEL_HPP
