#include "sim/result_store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>

#include "common/error.hpp"

namespace themis::sim {

namespace {

/** JSON string escape (ASCII control chars, quote, backslash). */
std::string
escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** "%.17g" — the shortest format that round-trips every double. */
std::string
fmtExact(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/**
 * Minimal cursor over one journal line. The store only ever parses
 * lines it (or a sibling shard) serialized, so the grammar is the
 * exact record shape — anything else is a truncated or corrupt tail
 * and parsing simply fails.
 */
struct Cursor
{
    const std::string& s;
    std::size_t pos = 0;

    bool
    lit(const char* text)
    {
        const std::size_t n = std::char_traits<char>::length(text);
        if (s.compare(pos, n, text) != 0)
            return false;
        pos += n;
        return true;
    }

    bool
    quoted(std::string& out)
    {
        if (pos >= s.size() || s[pos] != '"')
            return false;
        ++pos;
        out.clear();
        while (pos < s.size() && s[pos] != '"') {
            char c = s[pos++];
            if (c == '\\') {
                if (pos >= s.size())
                    return false;
                const char esc = s[pos++];
                switch (esc) {
                case '"': c = '"'; break;
                case '\\': c = '\\'; break;
                case 'n': c = '\n'; break;
                case 't': c = '\t'; break;
                case 'r': c = '\r'; break;
                case 'u': {
                    if (pos + 4 > s.size())
                        return false;
                    const std::string hex = s.substr(pos, 4);
                    if (hex.find_first_not_of("0123456789abcdefABCDEF") !=
                        std::string::npos)
                        return false;
                    c = static_cast<char>(
                        std::strtol(hex.c_str(), nullptr, 16));
                    pos += 4;
                    break;
                }
                default: return false;
                }
            }
            out += c;
        }
        if (pos >= s.size())
            return false;
        ++pos; // closing quote
        return true;
    }

    bool
    number(double& out)
    {
        const char* start = s.c_str() + pos;
        char* end = nullptr;
        const double v = std::strtod(start, &end);
        if (end == start)
            return false;
        pos += static_cast<std::size_t>(end - start);
        out = v;
        return true;
    }

    bool
    hex64(std::string& out)
    {
        out.clear();
        while (pos < s.size() &&
               std::string("0123456789abcdef").find(s[pos]) !=
                   std::string::npos)
            out += s[pos++];
        return !out.empty() && out.size() <= 16;
    }
};

} // namespace

const double*
ResultRecord::value(const std::string& name) const
{
    for (const auto& [n, v] : values)
        if (n == name)
            return &v;
    return nullptr;
}

std::string
makeResultKey(std::vector<std::pair<std::string, std::string>> pairs)
{
    std::sort(pairs.begin(), pairs.end());
    std::string key;
    for (const auto& [name, value] : pairs) {
        THEMIS_ASSERT(name.find_first_of(";=") == std::string::npos &&
                          value.find_first_of(";=") == std::string::npos,
                      "result key field '" << name << "=" << value
                                           << "' contains a "
                                              "reserved ';' or '='");
        if (!key.empty())
            key += ';';
        key += name;
        key += '=';
        key += value;
    }
    return key;
}

std::string
serializeRecord(const ResultRecord& rec, bool include_wall)
{
    std::string out = "{\"key\": \"" + escape(rec.key) +
                      "\", \"values\": {";
    bool first = true;
    for (const auto& [name, value] : rec.values) {
        if (!first)
            out += ", ";
        first = false;
        out += "\"" + escape(name) + "\": " + fmtExact(value);
    }
    char fp[24];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(rec.fingerprint));
    out += "}, \"fingerprint\": \"";
    out += fp;
    out += "\"";
    if (include_wall)
        out += ", \"wall_ms\": " + fmtExact(rec.wall_ms);
    out += "}";
    return out;
}

bool
parseRecord(const std::string& line, ResultRecord& out)
{
    ResultRecord rec;
    Cursor c{line};
    if (!c.lit("{\"key\": ") || !c.quoted(rec.key) ||
        !c.lit(", \"values\": {"))
        return false;
    bool first = true;
    while (!c.lit("}")) {
        if (!first && !c.lit(", "))
            return false;
        first = false;
        std::string name;
        double value = 0.0;
        if (!c.quoted(name) || !c.lit(": ") || !c.number(value))
            return false;
        rec.values.emplace_back(std::move(name), value);
    }
    std::string fp;
    if (!c.lit(", \"fingerprint\": \"") || !c.hex64(fp) ||
        !c.lit("\""))
        return false;
    rec.fingerprint = std::strtoull(fp.c_str(), nullptr, 16);
    if (c.lit(", \"wall_ms\": ")) {
        if (!c.number(rec.wall_ms))
            return false;
    }
    if (!c.lit("}") || c.pos != line.size())
        return false;
    out = std::move(rec);
    return true;
}

ResultStore::ResultStore(std::string path) : path_(std::move(path))
{
    const std::filesystem::path p{path_};
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
    }
    std::ifstream in(path_, std::ios::binary);
    if (!in.is_open())
        return; // fresh store
    std::string line;
    while (std::getline(in, line)) {
        // getline strips the '\n'; eof without a delimiter means the
        // final record never finished writing.
        const bool complete = !in.eof();
        ResultRecord rec;
        if (!complete || !parseRecord(line, rec)) {
            recovered_truncated_ = true;
            break;
        }
        THEMIS_ASSERT(index_.count(rec.key) == 0,
                      "duplicate key in results journal " << path_
                                                          << ": "
                                                          << rec.key);
        valid_bytes_ += line.size() + 1;
        index_.emplace(rec.key, records_.size());
        records_.push_back(std::move(rec));
    }
}

bool
ResultStore::has(const std::string& key) const
{
    return index_.count(key) != 0;
}

const ResultRecord*
ResultStore::find(const std::string& key) const
{
    const auto it = index_.find(key);
    if (it == index_.end())
        return nullptr;
    return &records_[it->second];
}

void
ResultStore::append(ResultRecord rec)
{
    THEMIS_ASSERT(!has(rec.key), "appending duplicate result key '"
                                     << rec.key
                                     << "'; resume must skip "
                                        "recorded cells");
    if (!out_open_) {
        // First append: drop any truncated tail so the journal is
        // exactly the valid prefix plus what this run appends.
        if (recovered_truncated_) {
            std::error_code ec;
            std::filesystem::resize_file(path_, valid_bytes_, ec);
            THEMIS_ASSERT(!ec, "cannot truncate partial record in "
                                   << path_ << ": " << ec.message());
        }
        out_.open(path_, std::ios::binary | std::ios::app);
        THEMIS_ASSERT(out_.is_open(),
                      "cannot open results journal " << path_);
        out_open_ = true;
    }
    const std::string line = serializeRecord(rec, true);
    out_ << line << '\n';
    out_.flush();
    THEMIS_ASSERT(out_.good(),
                  "write to results journal " << path_ << " failed");
    valid_bytes_ += line.size() + 1;
    index_.emplace(rec.key, records_.size());
    records_.push_back(std::move(rec));
}

std::string
ResultStore::canonicalBytes() const
{
    std::map<std::string, const ResultRecord*> by_key;
    for (const auto& rec : records_)
        by_key.emplace(rec.key, &rec);
    std::string out;
    for (const auto& [key, rec] : by_key)
        out += serializeRecord(*rec, false) + "\n";
    return out;
}

std::string
ResultStore::canonicalMerge(const std::vector<std::string>& paths)
{
    std::map<std::string, ResultRecord> by_key;
    for (const std::string& path : paths) {
        ResultStore store(path);
        for (const auto& rec : store.records()) {
            const auto it = by_key.find(rec.key);
            if (it == by_key.end()) {
                by_key.emplace(rec.key, rec);
                continue;
            }
            if (serializeRecord(it->second, false) !=
                serializeRecord(rec, false))
                THEMIS_FATAL(
                    "conflicting results for key '"
                    << rec.key << "' while merging " << path
                    << ": shards of one grid are disjoint, so the "
                       "inputs disagree on a cell's results");
        }
    }
    std::string out;
    for (const auto& [key, rec] : by_key)
        out += serializeRecord(rec, false) + "\n";
    return out;
}

} // namespace themis::sim
