#include "sim/sweep_runner.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.hpp"

namespace themis::sim {

namespace {

int
resolveThreads(int requested)
{
    if (requested > 0)
        return requested;
    if (const char* env = std::getenv("THEMIS_SWEEP_THREADS")) {
        // Strict parse: a malformed override silently falling back to
        // hardware concurrency turns "THEMIS_SWEEP_THREADS=1O ctest"
        // into a nondeterministically-threaded run with no hint why.
        char* end = nullptr;
        const long n = std::strtol(env, &end, 10);
        if (end == env || *end != '\0')
            THEMIS_FATAL("THEMIS_SWEEP_THREADS='"
                         << env
                         << "' is not an integer; set a positive "
                            "worker count or unset it");
        if (n < 1 || n > 4096)
            THEMIS_FATAL("THEMIS_SWEEP_THREADS="
                         << n
                         << " is outside [1, 4096]; set a positive "
                            "worker count or unset it");
        return static_cast<int>(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

} // namespace

SweepRunner::SweepRunner(SweepOptions options)
    : threads_(resolveThreads(options.threads)),
      front_end_(options.front_end)
{
}

void
SweepRunner::run(std::vector<Job> jobs)
{
    for (const auto& job : jobs)
        THEMIS_ASSERT(job, "null sweep job");
    if (jobs.empty())
        return;

    // Re-throw ConfigErrors with the failing job's index attached: a
    // multi-hundred-cell grid (e.g. a convergence sweep) is
    // undebuggable from a bare "bad chunk count" message, and the
    // index pins the exact cell regardless of worker interleaving.
    auto run_job = [](Job& job, std::size_t i, EventQueue& queue) {
        try {
            job(queue);
        } catch (const ConfigError& e) {
            throw ConfigError("sweep job " + std::to_string(i) +
                              " failed: " + e.what());
        }
    };

    const int workers =
        static_cast<int>(std::min<std::size_t>(
            jobs.size(), static_cast<std::size_t>(threads_)));
    if (workers <= 1) {
        EventQueue queue(front_end_);
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            run_job(jobs[i], i, queue);
            queue.reset();
        }
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    auto worker = [&] {
        EventQueue queue(front_end_);
        while (true) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            // Fail fast: once any job has thrown, stop pulling work
            // instead of grinding through the rest of the grid.
            if (i >= jobs.size() ||
                failed.load(std::memory_order_relaxed))
                return;
            try {
                run_job(jobs[i], i, queue);
            } catch (...) {
                failed.store(true, std::memory_order_relaxed);
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
            }
            queue.reset();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (auto& thread : pool)
        thread.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace themis::sim
