#include "sim/grid_shard.hpp"

#include "common/error.hpp"

namespace themis::sim {

namespace {

/** Strict non-negative integer parse; -1 on any non-digit content. */
int
parseField(const std::string& s)
{
    if (s.empty() ||
        s.find_first_not_of("0123456789") != std::string::npos)
        return -1;
    // Shard counts are tiny; overflow is not a realistic input, but
    // reject absurd widths rather than wrapping.
    if (s.size() > 6)
        return -1;
    return std::stoi(s);
}

} // namespace

ShardSpec
parseShardSpec(const std::string& arg)
{
    const std::size_t slash = arg.find('/');
    if (slash == std::string::npos)
        THEMIS_FATAL("shard spec '" << arg
                                    << "' is not of the form i/N "
                                       "(e.g. 0/4)");
    const int index = parseField(arg.substr(0, slash));
    const int count = parseField(arg.substr(slash + 1));
    if (index < 0)
        THEMIS_FATAL("shard spec '" << arg
                                    << "': shard index before '/' "
                                       "must be a non-negative "
                                       "integer");
    if (count < 1)
        THEMIS_FATAL("shard spec '" << arg
                                    << "': shard count after '/' "
                                       "must be a positive integer");
    if (index >= count)
        THEMIS_FATAL("shard spec '" << arg << "': index " << index
                                    << " outside [0, " << count
                                    << ")");
    return ShardSpec{index, count};
}

std::vector<std::size_t>
shardCells(std::size_t total, const ShardSpec& shard)
{
    std::vector<std::size_t> out;
    out.reserve(total / static_cast<std::size_t>(shard.count) + 1);
    for (std::size_t cell = static_cast<std::size_t>(shard.index);
         cell < total; cell += static_cast<std::size_t>(shard.count))
        out.push_back(cell);
    return out;
}

} // namespace themis::sim
