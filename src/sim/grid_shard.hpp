/**
 * @file
 * Deterministic sharding of sweep grids across processes.
 *
 * A grid is enumerated into a *canonical ordered cell list* by its
 * definition (the same index arithmetic regardless of worker count),
 * and a ShardSpec partitions that list: shard i of N owns exactly the
 * cells whose canonical index is congruent to i modulo N. Striding —
 * rather than contiguous block ranges — balances heterogeneous cell
 * costs (a grid usually orders cells topology-major, and topologies
 * differ wildly in simulation cost) without any coordination between
 * shards. Each shard runs in its own process with its own ResultStore
 * journal; because ownership is a pure function of (index, i, N) and
 * every record is keyed by the cell's canonical config key, the
 * shards' outputs merge back bit-identically to a 1-process run (see
 * sim/result_store.hpp).
 */

#ifndef THEMIS_SIM_GRID_SHARD_HPP
#define THEMIS_SIM_GRID_SHARD_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace themis::sim {

/** One shard of a partitioned grid: index in [0, count). */
struct ShardSpec
{
    int index = 0;
    int count = 1;

    /** True when this spec is the whole grid (the 1-process run). */
    bool whole() const { return count == 1; }

    /** True when this shard owns canonical cell @p cell. */
    bool
    owns(std::size_t cell) const
    {
        return static_cast<int>(cell %
                                static_cast<std::size_t>(count)) ==
               index;
    }
};

/**
 * Parse an "i/N" shard argument (e.g. "0/4"). Throws ConfigError with
 * a precise diagnostic on malformed input: non-numeric fields, a
 * missing '/', N < 1, or i outside [0, N).
 */
ShardSpec parseShardSpec(const std::string& arg);

/**
 * The canonical cell indices @p shard owns out of a @p total-cell
 * grid, in ascending order.
 */
std::vector<std::size_t> shardCells(std::size_t total,
                                    const ShardSpec& shard);

} // namespace themis::sim

#endif // THEMIS_SIM_GRID_SHARD_HPP
