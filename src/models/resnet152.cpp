/**
 * @file
 * ResNet-152 layer table, computed from the architecture (He et al.,
 * "Deep Residual Learning for Image Recognition", 2015): conv1 +
 * bottleneck stages of 3/8/36/3 blocks + the classifier. One workload
 * Layer per residual block gives per-block gradient All-Reduce
 * bucketing (~52 collectives per backward pass).
 *
 * Totals: ~60.2 M parameters, ~23 GFLOP forward per image (counting
 * 2 FLOPs per MAC).
 */

#include "models/model_zoo.hpp"

#include <sstream>

#include "common/error.hpp"

namespace themis::models {

namespace {

using workload::Layer;

/** FP16 bytes per parameter/activation element. */
constexpr double kElem = 2.0;

/** Accumulates one conv (+BN) into a Layer. */
void
addConv(Layer& layer, int mb, int cin, int cout, int k, int spatial_out)
{
    const double macs = static_cast<double>(k) * k * cin * cout *
                        spatial_out * spatial_out * mb;
    const double params = static_cast<double>(k) * k * cin * cout +
                          2.0 * cout; // + batch-norm scale/shift
    const double act_out =
        static_cast<double>(cout) * spatial_out * spatial_out * mb;
    layer.fwd_flops += 2.0 * macs;
    layer.bwd_flops += 4.0 * macs; // wgrad + dgrad
    layer.fwd_mem_bytes += kElem * (act_out + params);
    layer.bwd_mem_bytes += 2.0 * kElem * (act_out + params);
    layer.dp_grad_bytes += params * kElem;
}

/** One bottleneck residual block (1x1 -> 3x3 -> 1x1 [+ downsample]). */
Layer
bottleneck(const std::string& name, int mb, int cin, int mid, int cout,
           int spatial_out, bool downsample)
{
    Layer layer;
    layer.name = name;
    addConv(layer, mb, cin, mid, 1, spatial_out);
    addConv(layer, mb, mid, mid, 3, spatial_out);
    addConv(layer, mb, mid, cout, 1, spatial_out);
    if (downsample)
        addConv(layer, mb, cin, cout, 1, spatial_out);
    return layer;
}

} // namespace

workload::ModelGraph
makeResNet152(const ResNet152Config& cfg)
{
    THEMIS_ASSERT(cfg.minibatch_per_npu > 0, "bad mini-batch");
    const int mb = cfg.minibatch_per_npu;

    workload::ModelGraph g;
    g.name = "ResNet-152";
    g.parallel = workload::ParallelSpec::dataParallel();
    g.minibatch_per_npu = mb;

    // Stem: 7x7/2 conv to 64 channels at 112x112.
    {
        Layer stem;
        stem.name = "conv1";
        addConv(stem, mb, 3, 64, 7, cfg.image_size / 2);
        g.layers.push_back(stem);
    }

    struct StageSpec
    {
        int blocks;
        int mid;
        int cout;
        int spatial;
    };
    // After the stem's max-pool the spatial size is 56.
    const StageSpec stages[] = {
        {3, 64, 256, cfg.image_size / 4},
        {8, 128, 512, cfg.image_size / 8},
        {36, 256, 1024, cfg.image_size / 16},
        {3, 512, 2048, cfg.image_size / 32},
    };
    int cin = 64;
    int stage_id = 2;
    for (const auto& st : stages) {
        for (int b = 0; b < st.blocks; ++b) {
            std::ostringstream name;
            name << "conv" << stage_id << "_block" << b + 1;
            g.layers.push_back(bottleneck(name.str(), mb, cin, st.mid,
                                          st.cout, st.spatial, b == 0));
            cin = st.cout;
        }
        ++stage_id;
    }

    // Classifier.
    {
        Layer fc;
        fc.name = "fc1000";
        const double params =
            2048.0 * cfg.num_classes + cfg.num_classes;
        fc.fwd_flops = 2.0 * 2048.0 * cfg.num_classes * mb;
        fc.bwd_flops = 2.0 * fc.fwd_flops;
        fc.fwd_mem_bytes = kElem * (params + 2048.0 * mb);
        fc.bwd_mem_bytes = 2.0 * fc.fwd_mem_bytes;
        fc.dp_grad_bytes = params * kElem;
        g.layers.push_back(fc);
    }
    return g;
}

} // namespace themis::models
