/**
 * @file
 * The paper's four evaluation workloads (Sec 5.2): ResNet-152, GNMT,
 * DLRM and Transformer-1T, built from their published architecture
 * hyper-parameters. Per-NPU mini-batch sizes follow the paper: 32,
 * 128, 512 and 16 respectively; gradients are FP16.
 */

#ifndef THEMIS_MODELS_MODEL_ZOO_HPP
#define THEMIS_MODELS_MODEL_ZOO_HPP

#include <string>
#include <vector>

#include "workload/model_graph.hpp"

namespace themis::models {

/** ResNet-152 hyper-parameters (He et al., 2015). */
struct ResNet152Config
{
    int minibatch_per_npu = 32;
    int image_size = 224;
    int num_classes = 1000;
};

/** GNMT hyper-parameters (Wu et al., 2016; MLPerf-scale instance). */
struct GnmtConfig
{
    int minibatch_per_npu = 128;
    int hidden = 1024;
    int vocab = 32000;
    int encoder_layers = 8; ///< first layer bidirectional
    int decoder_layers = 8;
    int seq_len = 50;
};

/**
 * DLRM hyper-parameters (Naumov et al., 2019, at the larger MLP
 * scale of the HOTI'20 instance the paper cites: its fused gradient
 * All-Reduce lands in the collective-size range of Fig 8).
 */
struct DlrmConfig
{
    int minibatch_per_npu = 512;
    int num_tables = 26;
    int embedding_dim = 128;
    std::vector<int> bottom_mlp{13, 2048, 2048, 512};
    std::vector<int> top_mlp_hidden{2048, 2048, 1024, 512, 1};
};

/**
 * Transformer-1T hyper-parameters (paper Sec 5.2: ZeRO-2, MP=128).
 * 12*h^2*L = 1.007e12 parameters; one blocking activation All-Reduce
 * per block and pass at the attention+MLP boundary (Megatron
 * sequence-parallel-style volume).
 */
struct Transformer1TConfig
{
    int minibatch_per_npu = 16;
    int hidden = 51200;
    int num_layers = 32;
    int seq_len = 256;
    int vocab = 51200;
    int mp_degree = 128;
};

/** Data-parallel ResNet-152 (per-block gradient All-Reduce). */
workload::ModelGraph makeResNet152(const ResNet152Config& cfg = {});

/** Data-parallel GNMT (per-layer gradient All-Reduce). */
workload::ModelGraph makeGNMT(const GnmtConfig& cfg = {});

/**
 * Hybrid DLRM: MLPs data-parallel, embedding tables model-parallel
 * with overlapped All-to-All exchange (paper Sec 6.2).
 */
workload::ModelGraph makeDLRM(const DlrmConfig& cfg = {});

/**
 * Transformer-1T: model-parallel over the first 128 NPUs with
 * blocking per-layer activation All-Reduces; ZeRO-2-style RS+AG
 * data-parallel traffic on the remaining dimensions.
 */
workload::ModelGraph
makeTransformer1T(const Transformer1TConfig& cfg = {});

/** Names accepted by byName(), in paper order. */
std::vector<std::string> paperWorkloads();

/** Build a paper workload by name (case-insensitive). */
workload::ModelGraph byName(const std::string& name);

} // namespace themis::models

#endif // THEMIS_MODELS_MODEL_ZOO_HPP
