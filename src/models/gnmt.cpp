/**
 * @file
 * GNMT layer table (Wu et al., "Google's Neural Machine Translation
 * System", 2016), at the widely-used 8+8-layer, 1024-hidden, 32k-vocab
 * scale: embedding + bidirectional first encoder layer + residual LSTM
 * stack + attention + decoder stack + projection/softmax.
 *
 * LSTM parameter algebra: 4 gates x (input + hidden + 1) x hidden.
 * FLOPs per layer ~= 2 x params x tokens (fwd). Pure data-parallel;
 * one gradient All-Reduce per layer.
 */

#include "models/model_zoo.hpp"

#include <sstream>

#include "common/error.hpp"

namespace themis::models {

namespace {

using workload::Layer;

constexpr double kElem = 2.0; // FP16

double
lstmParams(int input, int hidden)
{
    return 4.0 * (static_cast<double>(input) + hidden + 1.0) * hidden;
}

/** Dense/recurrent layer with flops = 2 * params * tokens. */
Layer
denseLayer(const std::string& name, double params, double tokens)
{
    Layer l;
    l.name = name;
    l.fwd_flops = 2.0 * params * tokens;
    l.bwd_flops = 2.0 * l.fwd_flops;
    l.fwd_mem_bytes = kElem * (params + tokens * 1024.0);
    l.bwd_mem_bytes = 2.0 * l.fwd_mem_bytes;
    l.dp_grad_bytes = params * kElem;
    return l;
}

} // namespace

workload::ModelGraph
makeGNMT(const GnmtConfig& cfg)
{
    THEMIS_ASSERT(cfg.encoder_layers >= 2 && cfg.decoder_layers >= 1,
                  "GNMT needs its encoder/decoder stacks");
    const double tokens =
        static_cast<double>(cfg.minibatch_per_npu) * cfg.seq_len;
    const int h = cfg.hidden;

    workload::ModelGraph g;
    g.name = "GNMT";
    g.parallel = workload::ParallelSpec::dataParallel();
    g.minibatch_per_npu = cfg.minibatch_per_npu;

    // Source embedding: memory-bound lookups; grads are dense-reduced
    // in data-parallel training.
    {
        Layer emb;
        emb.name = "enc_embedding";
        emb.fwd_mem_bytes = kElem * tokens * h * 2.0;
        emb.bwd_mem_bytes = 2.0 * emb.fwd_mem_bytes;
        emb.dp_grad_bytes = static_cast<double>(cfg.vocab) * h * kElem;
        g.layers.push_back(emb);
    }

    // Encoder: layer 1 bidirectional (two LSTMs), layer 2 consumes the
    // 2h-wide concatenation, layers 3+ are h->h with residuals.
    g.layers.push_back(denseLayer("enc_lstm1_bidir",
                                  2.0 * lstmParams(h, h), tokens));
    for (int i = 2; i <= cfg.encoder_layers; ++i) {
        std::ostringstream name;
        name << "enc_lstm" << i;
        const int input = i == 2 ? 2 * h : h;
        g.layers.push_back(
            denseLayer(name.str(), lstmParams(input, h), tokens));
    }

    // Bahdanau-style attention over encoder states.
    g.layers.push_back(denseLayer("attention",
                                  3.0 * static_cast<double>(h) * h,
                                  tokens));

    // Decoder: layer 1 consumes embedding + attention context.
    for (int i = 1; i <= cfg.decoder_layers; ++i) {
        std::ostringstream name;
        name << "dec_lstm" << i;
        const int input = i == 1 ? 2 * h : h;
        g.layers.push_back(
            denseLayer(name.str(), lstmParams(input, h), tokens));
    }

    // Target embedding + projection/softmax.
    {
        Layer emb;
        emb.name = "dec_embedding";
        emb.fwd_mem_bytes = kElem * tokens * h * 2.0;
        emb.bwd_mem_bytes = 2.0 * emb.fwd_mem_bytes;
        emb.dp_grad_bytes = static_cast<double>(cfg.vocab) * h * kElem;
        g.layers.push_back(emb);
    }
    g.layers.push_back(denseLayer(
        "softmax_projection",
        static_cast<double>(h) * cfg.vocab + cfg.vocab, tokens));
    return g;
}

} // namespace themis::models
