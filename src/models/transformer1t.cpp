/**
 * @file
 * Transformer-1T layer table (paper Sec 5.2): a dense 1-trillion-
 * parameter Transformer (12 * h^2 * L with h=25600, L=128), trained
 * with Megatron-style model parallelism over the first 128 NPUs and
 * ZeRO-2 data parallelism across the remaining dimensions.
 *
 * Per layer and pass, the model-parallel group all-reduces the layer
 * activations twice (attention block + MLP block), blocking the
 * pipeline — this is the exposed-MP communication dominating Fig 12.
 * ZeRO's forward-in-backprop recompute is charged to the forward
 * compute bucket, matching the paper's accounting note. DP gradient
 * traffic is a ZeRO-2 reduce-scatter plus parameter all-gather per
 * layer, landing on the last network dimension only.
 */

#include "models/model_zoo.hpp"

#include <sstream>

#include "common/error.hpp"

namespace themis::models {

namespace {

using workload::CommDomain;
using workload::Layer;
using workload::LayerCommOp;

constexpr double kElem = 2.0; // FP16

} // namespace

workload::ModelGraph
makeTransformer1T(const Transformer1TConfig& cfg)
{
    THEMIS_ASSERT(cfg.mp_degree >= 2, "Transformer-1T requires MP");
    const double h = cfg.hidden;
    const double tokens =
        static_cast<double>(cfg.minibatch_per_npu) * cfg.seq_len;
    const double mp = cfg.mp_degree;

    workload::ModelGraph g;
    g.name = "Transformer-1T";
    g.parallel = workload::ParallelSpec::hybrid(cfg.mp_degree);
    g.minibatch_per_npu = cfg.minibatch_per_npu;
    // ZeRO-2 buckets gradient reduce-scatters per layer during the
    // backward pass instead of one fused exchange.
    g.fused_dp_grads = false;

    // Activation All-Reduce payload per block: full (tokens x h)
    // activation in FP16 (Megatron's g/f operators).
    const Bytes act_ar = tokens * h * kElem;

    // Token + position embedding, sharded across the MP group.
    {
        Layer emb;
        emb.name = "embedding";
        const double params =
            (static_cast<double>(cfg.vocab) + cfg.seq_len) * h / mp;
        emb.fwd_mem_bytes = kElem * (tokens * h + params);
        emb.bwd_mem_bytes = 2.0 * emb.fwd_mem_bytes;
        emb.dp_grad_bytes = params * kElem;
        emb.zero_style_dp = true;
        g.layers.push_back(emb);
    }

    // Transformer blocks: 12*h^2 parameters each (4h^2 attention +
    // 8h^2 MLP), FLOPs 2*params*tokens, all sharded MP-ways.
    const double layer_params = 12.0 * h * h;
    for (int i = 1; i <= cfg.num_layers; ++i) {
        std::ostringstream name;
        name << "block" << i;
        Layer l;
        l.name = name.str();
        const double shard_params = layer_params / mp;
        l.fwd_flops = 2.0 * shard_params * tokens;
        l.bwd_flops = 2.0 * l.fwd_flops;
        l.recompute_flops = l.fwd_flops; // ZeRO fwd-in-backprop
        l.fwd_mem_bytes = kElem * (shard_params + tokens * h / mp);
        l.bwd_mem_bytes = 2.0 * l.fwd_mem_bytes;
        l.dp_grad_bytes = shard_params * kElem;
        l.zero_style_dp = true;
        // One blocking activation All-Reduce per pass at the block
        // boundary (sequence-parallel Megatron moves the same volume
        // as a single AR per attention+MLP block).
        l.fwd_comm.push_back(LayerCommOp{CollectiveType::AllReduce,
                                         act_ar,
                                         CommDomain::ModelParallel,
                                         /*blocking=*/true});
        l.bwd_comm.push_back(LayerCommOp{CollectiveType::AllReduce,
                                         act_ar,
                                         CommDomain::ModelParallel,
                                         /*blocking=*/true});
        g.layers.push_back(l);
    }

    // Output head (logits projection), sharded MP-ways; its blocking
    // All-Gather assembles the vocabulary-parallel logits.
    {
        Layer head;
        head.name = "lm_head";
        const double params = static_cast<double>(cfg.vocab) * h / mp;
        head.fwd_flops = 2.0 * params * tokens;
        head.bwd_flops = 2.0 * head.fwd_flops;
        head.fwd_mem_bytes = kElem * params;
        head.bwd_mem_bytes = 2.0 * head.fwd_mem_bytes;
        head.dp_grad_bytes = params * kElem;
        head.zero_style_dp = true;
        head.fwd_comm.push_back(
            LayerCommOp{CollectiveType::AllGather,
                        tokens * cfg.vocab * kElem,
                        CommDomain::ModelParallel, /*blocking=*/true});
        g.layers.push_back(head);
    }
    return g;
}

} // namespace themis::models
