#include "models/model_zoo.hpp"

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace themis::models {

std::vector<std::string>
paperWorkloads()
{
    return {"ResNet-152", "GNMT", "DLRM", "Transformer-1T"};
}

workload::ModelGraph
byName(const std::string& name)
{
    const std::string n = toLower(name);
    if (n == "resnet-152" || n == "resnet152")
        return makeResNet152();
    if (n == "gnmt")
        return makeGNMT();
    if (n == "dlrm")
        return makeDLRM();
    if (n == "transformer-1t" || n == "transformer1t")
        return makeTransformer1T();
    THEMIS_FATAL("unknown workload '" << name << "'; known: "
                                      << join(paperWorkloads(), ", "));
}

} // namespace themis::models
