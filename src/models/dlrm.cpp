/**
 * @file
 * DLRM layer table (Naumov et al., 2019; instance of Rashidi et al.,
 * HOTI'20, which the paper cites for its DLRM configuration): hybrid
 * parallelism — dense MLPs are data-parallel, embedding tables are
 * model-parallel across the whole machine with an All-to-All exchange
 * of looked-up vectors.
 *
 * Forward: the embedding All-to-All is issued up front and overlaps
 * with the bottom-MLP compute; the first top-MLP layer waits for it
 * (paper Sec 6.2). Backward: the gradient All-to-All is issued after
 * the first top-MLP layer's backward pass and overlaps with the
 * bottom-MLP backward; only the iteration end waits for it.
 */

#include "models/model_zoo.hpp"

#include <sstream>

#include "common/error.hpp"

namespace themis::models {

namespace {

using workload::CommDomain;
using workload::Layer;
using workload::LayerCommOp;

constexpr double kElem = 2.0; // FP16

Layer
mlpLayer(const std::string& name, int in, int out, double samples)
{
    Layer l;
    l.name = name;
    const double params = static_cast<double>(in) * out + out;
    l.fwd_flops = 2.0 * static_cast<double>(in) * out * samples;
    l.bwd_flops = 2.0 * l.fwd_flops;
    l.fwd_mem_bytes = kElem * (params + samples * out);
    l.bwd_mem_bytes = 2.0 * l.fwd_mem_bytes;
    l.dp_grad_bytes = params * kElem;
    return l;
}

} // namespace

workload::ModelGraph
makeDLRM(const DlrmConfig& cfg)
{
    THEMIS_ASSERT(cfg.bottom_mlp.size() >= 2, "bottom MLP too small");
    THEMIS_ASSERT(!cfg.top_mlp_hidden.empty(), "top MLP missing");
    const double mb = cfg.minibatch_per_npu;

    workload::ModelGraph g;
    g.name = "DLRM";
    g.parallel = workload::ParallelSpec::dataParallel();
    g.minibatch_per_npu = cfg.minibatch_per_npu;

    // Per-NPU All-to-All payload: every sample needs one vector per
    // table (FP16).
    const Bytes a2a_bytes =
        mb * cfg.num_tables * cfg.embedding_dim * kElem;

    // Embedding lookup "layer": local shard reads; issues the forward
    // All-to-All that overlaps with the bottom MLP.
    {
        Layer emb;
        emb.name = "embedding_lookup";
        emb.fwd_mem_bytes =
            2.0 * mb * cfg.num_tables * cfg.embedding_dim * kElem;
        emb.bwd_mem_bytes = emb.fwd_mem_bytes;
        emb.fwd_comm.push_back(LayerCommOp{CollectiveType::AllToAll,
                                           a2a_bytes, CommDomain::World,
                                           /*blocking=*/false});
        g.layers.push_back(emb);
    }

    // Bottom MLP over dense features.
    for (std::size_t i = 0; i + 1 < cfg.bottom_mlp.size(); ++i) {
        std::ostringstream name;
        name << "bottom_mlp" << i + 1;
        g.layers.push_back(mlpLayer(name.str(), cfg.bottom_mlp[i],
                                    cfg.bottom_mlp[i + 1], mb));
    }

    // Pairwise feature interaction: (tables+1 choose 2) dot products
    // plus the dense feature pass-through feed the top MLP.
    const int vectors = cfg.num_tables + 1;
    const int interaction = vectors * (vectors - 1) / 2 +
                            cfg.bottom_mlp.back();

    int in = interaction;
    for (std::size_t i = 0; i < cfg.top_mlp_hidden.size(); ++i) {
        std::ostringstream name;
        name << "top_mlp" << i + 1;
        Layer l = mlpLayer(name.str(), in, cfg.top_mlp_hidden[i], mb);
        if (i == 0) {
            // Join point for the overlapped forward All-to-All, and
            // the issue point of the backward gradient All-to-All.
            l.wait_pending_before_fwd = true;
            l.bwd_comm.push_back(
                LayerCommOp{CollectiveType::AllToAll, a2a_bytes,
                            CommDomain::World, /*blocking=*/false});
        }
        in = cfg.top_mlp_hidden[i];
        g.layers.push_back(l);
    }
    return g;
}

} // namespace themis::models
