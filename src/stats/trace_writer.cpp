#include "stats/trace_writer.hpp"

#include <cstdio>
#include <fstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace themis::stats {

namespace {

/**
 * Append a microsecond timestamp. %.17g keeps small values compact
 * ("1", not "1.000000") and large multi-epoch offsets exact.
 */
void
appendUs(std::string& out, TimeNs ns)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", ns / 1.0e3);
    out += buf;
}

} // namespace

void
TraceWriter::record(int dim, std::string name, TimeNs start,
                    TimeNs end)
{
    span(kFabricPid, dim + 1, std::move(name), start, end);
}

void
TraceWriter::recordFabricOp(int dim, const char* label,
                            std::size_t len, TimeNs start, TimeNs end)
{
    THEMIS_ASSERT(end >= start, "trace event ends before it starts");
    auto& e = events_.emplace_back();
    e.phase = 'X';
    e.pid = kFabricPid;
    e.tid = dim + 1;
    e.name.assign(label, len);
    e.start = time_base_ + start;
    e.dur = end - start;
}

void
TraceWriter::span(int pid, int tid, std::string name, TimeNs start,
                  TimeNs end)
{
    spanAbs(pid, tid, std::move(name), time_base_ + start,
            time_base_ + end);
}

void
TraceWriter::spanAbs(int pid, int tid, std::string name, TimeNs start,
                     TimeNs end)
{
    THEMIS_ASSERT(end >= start, "trace event ends before it starts");
    events_.push_back(
        Event{'X', pid, tid, std::move(name), start, end - start});
}

void
TraceWriter::instant(int pid, int tid, std::string name, TimeNs at)
{
    instantAbs(pid, tid, std::move(name), time_base_ + at);
}

void
TraceWriter::instantAbs(int pid, int tid, std::string name, TimeNs at)
{
    events_.push_back(Event{'i', pid, tid, std::move(name), at, 0.0});
    ++instant_count_;
}

void
TraceWriter::setProcessName(int pid, const std::string& name)
{
    process_names_[pid] = name;
}

void
TraceWriter::setThreadName(int pid, int tid, const std::string& name)
{
    thread_names_[{pid, tid}] = name;
}

void
TraceWriter::advanceTimeBase(TimeNs elapsed)
{
    THEMIS_ASSERT(elapsed >= 0.0, "trace time base moved backwards");
    time_base_ += elapsed;
}

std::string
TraceWriter::toJson() const
{
    std::string out;
    out.reserve(events_.size() * 96 + 256);
    out += "{\"traceEvents\":[";
    bool first = true;
    const auto sep = [&] {
        if (!first)
            out += ',';
        first = false;
    };

    // Process-name metadata rows.
    for (const auto& [pid, name] : process_names_) {
        sep();
        char buf[64];
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"process_name\",\"ph\":\"M\","
                      "\"pid\":%d,\"args\":{\"name\":\"",
                      pid);
        out += buf;
        out += jsonEscape(name);
        out += "\"}}";
    }

    // Thread-name metadata rows: auto-named fabric dims (back-compat)
    // unless explicitly overridden, then every explicit name.
    int max_dim = -1;
    for (const auto& e : events_)
        if (e.pid == kFabricPid && e.tid - 1 > max_dim)
            max_dim = e.tid - 1;
    for (int d = 0; d <= max_dim; ++d) {
        if (thread_names_.count({kFabricPid, d + 1}) != 0)
            continue;
        sep();
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"thread_name\",\"ph\":\"M\","
                      "\"pid\":%d,\"tid\":%d,"
                      "\"args\":{\"name\":\"dim%d\"}}",
                      kFabricPid, d + 1, d + 1);
        out += buf;
    }
    for (const auto& [key, name] : thread_names_) {
        sep();
        char buf[80];
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"thread_name\",\"ph\":\"M\","
                      "\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"",
                      key.first, key.second);
        out += buf;
        out += jsonEscape(name);
        out += "\"}}";
    }

    for (const auto& e : events_) {
        sep();
        out += "{\"name\":\"";
        out += jsonEscape(e.name);
        out += "\",\"ph\":\"";
        out += e.phase;
        out += '"';
        if (e.phase == 'i')
            out += ",\"s\":\"g\"";
        char buf[48];
        std::snprintf(buf, sizeof(buf), ",\"pid\":%d,\"tid\":%d,\"ts\":",
                      e.pid, e.tid);
        out += buf;
        appendUs(out, e.start);
        if (e.phase == 'X') {
            out += ",\"dur\":";
            appendUs(out, e.dur);
        }
        out += '}';
    }
    out += "]}";
    return out;
}

void
TraceWriter::writeFile(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        THEMIS_FATAL("cannot open trace output file '" << path << "'");
    out << toJson();
}

} // namespace themis::stats
