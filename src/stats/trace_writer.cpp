#include "stats/trace_writer.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace themis::stats {

namespace {

std::string
escapeJson(const std::string& s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

void
TraceWriter::record(int dim, const std::string& name, TimeNs start,
                    TimeNs end)
{
    THEMIS_ASSERT(end >= start, "trace event ends before it starts");
    events_.push_back(Event{dim, name, start, end});
}

std::string
TraceWriter::toJson() const
{
    std::ostringstream oss;
    oss << "{\"traceEvents\":[";
    bool first = true;
    // Thread-name metadata rows, one per dimension seen.
    int max_dim = -1;
    for (const auto& e : events_)
        max_dim = e.dim > max_dim ? e.dim : max_dim;
    for (int d = 0; d <= max_dim; ++d) {
        if (!first)
            oss << ",";
        first = false;
        oss << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
            << "\"tid\":" << d + 1
            << ",\"args\":{\"name\":\"dim" << d + 1 << "\"}}";
    }
    for (const auto& e : events_) {
        if (!first)
            oss << ",";
        first = false;
        oss << "{\"name\":\"" << escapeJson(e.name)
            << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.dim + 1
            << ",\"ts\":" << e.start / 1.0e3
            << ",\"dur\":" << (e.end - e.start) / 1.0e3 << "}";
    }
    oss << "]}";
    return oss.str();
}

void
TraceWriter::writeFile(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        THEMIS_FATAL("cannot open trace output file '" << path << "'");
    out << toJson();
}

} // namespace themis::stats
