#include "stats/summary.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace themis::stats {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    THEMIS_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(const std::vector<std::string>& cells)
{
    THEMIS_ASSERT(cells.size() == headers_.size(),
                  "row arity " << cells.size() << " != header arity "
                               << headers_.size());
    rows_.push_back(cells);
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](std::ostringstream& oss,
                    const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c > 0)
                oss << "  ";
            oss << cells[c];
            oss << std::string(width[c] - cells[c].size(), ' ');
        }
        oss << "\n";
    };

    std::ostringstream oss;
    emit(oss, headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c > 0 ? 2 : 0);
    oss << std::string(total, '-') << "\n";
    for (const auto& row : rows_)
        emit(oss, row);
    return oss.str();
}

std::string
renderClassTable(const std::vector<ClassUsageRow>& rows)
{
    TextTable t({"Class", "Weight", "Collectives", "Mean time",
                 "Bytes", "BW share", "Slowdown"});
    for (const auto& r : rows) {
        t.addRow({r.name, "x" + fmtDouble(r.weight, 1),
                  std::to_string(r.collectives),
                  r.collectives > 0 ? fmtTime(r.mean_duration) : "-",
                  fmtBytes(r.progressed), fmtPercent(r.utilization),
                  r.slowdown > 0.0 ? fmtDouble(r.slowdown, 2) + "x"
                                   : "-"});
    }
    return t.render();
}

std::string
renderJobTable(const std::vector<JobUsageRow>& rows)
{
    TextTable t({"Job", "Kind", "Arrival", "JCT", "Units",
                 "Mean unit", "p99 unit", "Max unit", "Exposed",
                 "Deadline", "Bytes", "BW share", "Cycle units"});
    for (const auto& r : rows) {
        t.addRow({r.name, r.kind, fmtTime(r.arrival), fmtTime(r.jct),
                  std::to_string(r.units),
                  r.units > 0 ? fmtTime(r.mean_unit) : "-",
                  r.unit_p99 >= 0.0 ? fmtTime(r.unit_p99) : "-",
                  r.unit_max >= 0.0 ? fmtTime(r.unit_max) : "-",
                  r.exposed_share >= 0.0 ? fmtPercent(r.exposed_share)
                                         : "-",
                  r.deadline_hit_rate >= 0.0
                      ? fmtPercent(r.deadline_hit_rate)
                      : "-",
                  r.progressed >= 0.0 ? fmtBytes(r.progressed) : "-",
                  r.utilization >= 0.0 ? fmtPercent(r.utilization)
                                       : "-",
                  r.cycle_units >= 0 ? std::to_string(r.cycle_units)
                                     : "-"});
    }
    return t.render();
}

std::string
renderConvergenceTable(const std::vector<ConvergenceRunRow>& rows)
{
    TextTable t({"Mode", "Iters", "Simulated", "Replayed", "Cycle",
                 "Sim time", "Iter time", "BW util", "Wall"});
    for (const auto& r : rows) {
        t.addRow({r.label, std::to_string(r.iterations),
                  std::to_string(r.simulated),
                  std::to_string(r.replayed),
                  r.cycle_length > 0 ? std::to_string(r.cycle_length)
                                     : "-",
                  fmtTime(r.total_time), fmtTime(r.last_iteration),
                  fmtPercent(r.utilization),
                  fmtDouble(r.wall_ms, 1) + " ms"});
    }
    return t.render();
}

std::string
renderFaultTable(const std::vector<FaultDimRow>& rows)
{
    TextTable t({"Dim", "Capacity steps", "Flaps", "Down time",
                 "Retries", "Backoff p99", "Backoff max",
                 "Lost bytes", "Fatal"});
    for (const auto& r : rows) {
        t.addRow({r.name, std::to_string(r.capacity_events),
                  std::to_string(r.flaps),
                  r.flaps > 0 ? fmtTime(r.down_time) : "-",
                  std::to_string(r.retries),
                  r.backoff_p99 >= 0.0 ? fmtTime(r.backoff_p99) : "-",
                  r.backoff_max >= 0.0 ? fmtTime(r.backoff_max) : "-",
                  r.retries > 0 ? fmtBytes(r.lost_bytes) : "-",
                  r.fatal_retries > 0 ? std::to_string(r.fatal_retries)
                                      : "-"});
    }
    return t.render();
}

} // namespace themis::stats
