/**
 * @file
 * Per-dimension "frontend activity" tracking (paper Fig 9).
 *
 * A dimension is active while at least one chunk operation is present
 * on it (queued or executing). The runtime reports presence
 * transitions; this class records the intervals and can bucketize
 * them into activity rates over fixed windows (the paper uses 100 us
 * buckets).
 */

#ifndef THEMIS_STATS_ACTIVITY_TIMELINE_HPP
#define THEMIS_STATS_ACTIVITY_TIMELINE_HPP

#include <utility>
#include <vector>

#include "common/units.hpp"

namespace themis::stats {

/** Records per-dimension activity intervals; see file comment. */
class ActivityTimeline
{
  public:
    /** @param num_dims number of (global) dimensions tracked. */
    explicit ActivityTimeline(int num_dims);

    /** Presence transition of @p dim at time @p when. */
    void onPresence(int dim, bool present, TimeNs when);

    /** Close any open intervals at @p end (idempotent afterwards). */
    void finalize(TimeNs end);

    /**
     * Drop all recorded intervals and re-arm recording (for
     * iteration-epoch replay, whose time frame restarts at zero each
     * iteration). Asserts no dimension is mid-interval.
     */
    void reset();

    /** Closed intervals of @p dim as (start, end) pairs. */
    const std::vector<std::pair<TimeNs, TimeNs>>&
    intervals(int dim) const;

    /** Total active time of @p dim over closed intervals. */
    TimeNs busyTime(int dim) const;

    /** Activity rates per bucket. */
    struct Profile
    {
        TimeNs bucket_ns = 0.0;
        /** rate[dim][bucket] in [0, 1]. */
        std::vector<std::vector<double>> rate;
    };

    /**
     * Bucketize activity into windows of @p bucket_ns covering
     * [0, end). Requires finalize() first (asserts otherwise).
     */
    Profile profile(TimeNs bucket_ns, TimeNs end) const;

  private:
    struct DimState
    {
        std::vector<std::pair<TimeNs, TimeNs>> intervals;
        bool present = false;
        TimeNs since = 0.0;
    };

    std::vector<DimState> dims_;
    bool finalized_ = false;
};

} // namespace themis::stats

#endif // THEMIS_STATS_ACTIVITY_TIMELINE_HPP
