/**
 * @file
 * Chrome-trace export (chrome://tracing / Perfetto "trace event"
 * JSON): one timeline row per network dimension, one complete event
 * per chunk operation. Attach to a CommRuntime's engines to visualize
 * how baseline vs Themis scheduling fills the dimensions — the
 * interactive version of the paper's Fig 5 diagrams.
 */

#ifndef THEMIS_STATS_TRACE_WRITER_HPP
#define THEMIS_STATS_TRACE_WRITER_HPP

#include <string>
#include <vector>

#include "common/units.hpp"

namespace themis::stats {

/** Collects chunk-op spans and writes trace-event JSON. */
class TraceWriter
{
  public:
    TraceWriter() = default;

    /**
     * Record one completed chunk operation.
     * @param dim      global dimension index (becomes the trace row)
     * @param name     event label, e.g. "RS c3.s1"
     * @param start    simulation start time (ns)
     * @param end      simulation end time (ns)
     */
    void record(int dim, const std::string& name, TimeNs start,
                TimeNs end);

    /** Number of recorded events. */
    std::size_t eventCount() const { return events_.size(); }

    /**
     * Serialize as Chrome trace-event JSON (microsecond timestamps,
     * one process, one thread per dimension).
     */
    std::string toJson() const;

    /** Write the JSON to @p path; throws ConfigError on failure. */
    void writeFile(const std::string& path) const;

  private:
    struct Event
    {
        int dim;
        std::string name;
        TimeNs start;
        TimeNs end;
    };

    std::vector<Event> events_;
};

} // namespace themis::stats

#endif // THEMIS_STATS_TRACE_WRITER_HPP
