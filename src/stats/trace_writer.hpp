/**
 * @file
 * Chrome-trace export (chrome://tracing / Perfetto "trace event"
 * JSON). Originally one timeline row per network dimension with one
 * complete event per chunk operation — the interactive version of the
 * paper's Fig 5 diagrams. Now a general sink for the telemetry layer:
 *
 *  - pid 1 ("fabric"): per-dimension chunk-op spans, as before.
 *  - pid 2 ("jobs"): per-job rows with request / iteration spans from
 *    the cluster layer.
 *  - pid 3 ("run"): run-level rows carrying instant events for fault
 *    timeline edges, re-plans, retries and fatal exhaustion, plus
 *    replay-span metadata, so a whole `--jobs` run under
 *    `--faults --adapt` reads as one Perfetto timeline.
 *
 * Iteration epochs rebase the event queue to zero; the writer keeps an
 * absolute time base (advanced by the runtime at every epoch rebase
 * and replay skip) so multi-epoch traces stay monotonic. All record
 * calls take queue-relative times unless suffixed `Abs`.
 */

#ifndef THEMIS_STATS_TRACE_WRITER_HPP
#define THEMIS_STATS_TRACE_WRITER_HPP

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace themis::stats {

/** Collects spans and instants and writes trace-event JSON. */
class TraceWriter
{
  public:
    /** Well-known trace processes (Perfetto groups rows by pid). */
    static constexpr int kFabricPid = 1;
    static constexpr int kJobsPid = 2;
    static constexpr int kRunPid = 3;

    /** Well-known rows in the run-level process. */
    static constexpr int kFaultTid = 1;
    static constexpr int kAdaptTid = 2;
    static constexpr int kReplayTid = 3;

    TraceWriter() = default;

    /**
     * Record one completed chunk operation on the fabric process.
     * Labels move (not copy) into the event store: this fires once
     * per chunk op and is the hottest telemetry path (gated at <=10%
     * throughput cost by bench/telemetry_overhead.cpp).
     * @param dim      global dimension index (becomes the trace row)
     * @param name     event label, e.g. "RS c3.s1"
     * @param start    simulation start time (ns, queue-relative)
     * @param end      simulation end time (ns, queue-relative)
     */
    void record(int dim, std::string name, TimeNs start, TimeNs end);

    /**
     * Single-hop fabric-span fast path: same event as record(), but
     * the label is taken as a raw char range and the event is built
     * in place (no intermediate std::string moves through the
     * span()/spanAbs() chain). The per-chunk-op hook uses this.
     */
    void recordFabricOp(int dim, const char* label, std::size_t len,
                        TimeNs start, TimeNs end);

    /** Record a span on an arbitrary pid/tid row (queue-relative). */
    void span(int pid, int tid, std::string name, TimeNs start,
              TimeNs end);

    /** Span with absolute timestamps (time base NOT added). */
    void spanAbs(int pid, int tid, std::string name, TimeNs start,
                 TimeNs end);

    /** Record an instant event (queue-relative time). */
    void instant(int pid, int tid, std::string name, TimeNs at);

    /** Instant with an absolute timestamp (time base NOT added). */
    void instantAbs(int pid, int tid, std::string name, TimeNs at);

    /** Name a trace process / row (emitted as metadata events). */
    void setProcessName(int pid, const std::string& name);
    void setThreadName(int pid, int tid, const std::string& name);

    /**
     * Fold @p elapsed queue time into the absolute base. The runtime
     * calls this at every iteration-epoch rebase and for every
     * replayed convergence round, keeping multi-epoch traces
     * monotonic.
     */
    void advanceTimeBase(TimeNs elapsed);
    TimeNs timeBase() const { return time_base_; }

    /** Number of recorded events (spans + instants). */
    std::size_t eventCount() const { return events_.size(); }
    std::size_t instantCount() const { return instant_count_; }

    /**
     * Serialize as Chrome trace-event JSON (microsecond timestamps).
     * Spans are "X" complete events, instants are "i" with global
     * scope; process/thread names become "M" metadata rows.
     */
    std::string toJson() const;

    /** Write the JSON to @p path; throws ConfigError on failure. */
    void writeFile(const std::string& path) const;

  private:
    struct Event
    {
        char phase; // 'X' or 'i'
        int pid;
        int tid;
        std::string name;
        TimeNs start; // absolute ns
        TimeNs dur;   // ns; unused for instants
    };

    std::vector<Event> events_;
    std::map<int, std::string> process_names_;
    std::map<std::pair<int, int>, std::string> thread_names_;
    TimeNs time_base_ = 0.0;
    std::size_t instant_count_ = 0;
};

} // namespace themis::stats

#endif // THEMIS_STATS_TRACE_WRITER_HPP
