/**
 * @file
 * Text-table formatting for bench/example reports, plus the summary
 * record of a single communication run.
 */

#ifndef THEMIS_STATS_SUMMARY_HPP
#define THEMIS_STATS_SUMMARY_HPP

#include <string>
#include <vector>

#include "common/units.hpp"

namespace themis::stats {

/** Result of simulating one collective (or a batch of them). */
struct CommRunSummary
{
    std::string label;

    /** Total simulated communication time. */
    TimeNs comm_time = 0.0;

    /** Weighted average BW utilization during comm-active windows. */
    double weighted_utilization = 0.0;

    /** Per-dimension utilization. */
    std::vector<double> per_dim_utilization;
};

/** Column-aligned monospace table for terminal reports. */
class TextTable
{
  public:
    /** @param headers column titles. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must match the header arity. */
    void addRow(const std::vector<std::string>& cells);

    /** Render with padding and a header underline. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace themis::stats

#endif // THEMIS_STATS_SUMMARY_HPP
