/**
 * @file
 * Text-table formatting for bench/example reports, plus the summary
 * record of a single communication run.
 */

#ifndef THEMIS_STATS_SUMMARY_HPP
#define THEMIS_STATS_SUMMARY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace themis::stats {

/** Result of simulating one collective (or a batch of them). */
struct CommRunSummary
{
    std::string label;

    /** Total simulated communication time. */
    TimeNs comm_time = 0.0;

    /** Weighted average BW utilization during comm-active windows. */
    double weighted_utilization = 0.0;

    /** Per-dimension utilization. */
    std::vector<double> per_dim_utilization;
};

/** One flow-class row of a priority breakdown table. */
struct ClassUsageRow
{
    /** Class name (priorityTierName). */
    std::string name;

    /** GPS weight the priority policy assigns this class. */
    double weight = 1.0;

    /** Completed collectives in this class. */
    int collectives = 0;

    /** Mean completion time of those collectives. */
    TimeNs mean_duration = 0.0;

    /** Bytes the class progressed across all dimensions. */
    Bytes progressed = 0.0;

    /** Class share of machine bandwidth in comm-active windows. */
    double utilization = 0.0;

    /**
     * Mean completion time relative to the class running alone
     * (caller-supplied solo baseline); values <= 0 render as "-".
     */
    double slowdown = 0.0;
};

/**
 * Render per-class usage rows (runtime::CommRuntime::classReports()
 * plus optional solo-run slowdowns) as a standard table.
 */
std::string renderClassTable(const std::vector<ClassUsageRow>& rows);

/** One job row of a multi-job cluster report. */
struct JobUsageRow
{
    /** Job label, e.g. "train:GNMT" or "infer:32.00 MB". */
    std::string name;

    /** Kind label ("train"/"infer"). */
    std::string kind;

    /** Simulated arrival time. */
    TimeNs arrival = 0.0;

    /** Job completion time (JCT = finished - arrival). */
    TimeNs jct = 0.0;

    /** Completed units: training iterations or inference requests. */
    int units = 0;

    /** Mean unit time (iteration duration / request latency). */
    TimeNs mean_unit = 0.0;

    /** Exposed-communication share; negative renders as "-". */
    double exposed_share = -1.0;

    /** Deadline hit rate; negative renders as "-". */
    double deadline_hit_rate = -1.0;

    /** Bytes the job progressed across the fabric; negative renders
     *  as "-" (lockstep convergence runs replay whole rounds
     *  analytically and carry no per-job wire totals). */
    Bytes progressed = 0.0;

    /** Job share of machine bandwidth in comm-active windows;
     *  negative renders as "-". */
    double utilization = 0.0;

    /**
     * Steps this job takes per confirmed steady cycle in a lockstep
     * convergence run (cycle_length / cadence); negative renders as
     * "-" (free-running runs have no cycle).
     */
    int cycle_units = -1;

    /**
     * Unit-time tail (ns) from the job's telemetry histogram: p99 and
     * worst case over iteration durations (training) or request
     * latencies (inference). Negative renders as "-" (no telemetry,
     * or no completed units).
     */
    double unit_p99 = -1.0;
    double unit_max = -1.0;
};

/** Render per-job cluster rows as a standard table. */
std::string renderJobTable(const std::vector<JobUsageRow>& rows);

/**
 * One mode row of a multi-iteration convergence-run comparison
 * (plain numbers so the CLI and the bench can share one renderer
 * without this layer depending on workload types).
 */
struct ConvergenceRunRow
{
    /** Mode label, e.g. "replay" or "full simulation". */
    std::string label;

    /** Iterations accounted for / event-simulated / replayed. */
    int iterations = 0;
    int simulated = 0;
    int replayed = 0;

    /** Confirmed steady-cycle length in rounds; 0 renders as "-". */
    int cycle_length = 0;

    /** Summed simulated time over all iterations. */
    TimeNs total_time = 0.0;

    /** Final iteration's simulated duration. */
    TimeNs last_iteration = 0.0;

    /** Fig-4-definition utilization over the run. */
    double utilization = 0.0;

    /** Host wall-clock cost of producing the run. */
    double wall_ms = 0.0;
};

/** Render convergence-run rows as a standard table. */
std::string
renderConvergenceTable(const std::vector<ConvergenceRunRow>& rows);

/** One dimension row of a fault/retry report (fault engine). */
struct FaultDimRow
{
    /** Dimension label, e.g. "dim1 (SW)". */
    std::string name;

    /** Capacity steps applied (degrade/straggler edges). */
    std::uint64_t capacity_events = 0;

    /** Link flaps applied. */
    std::uint64_t flaps = 0;

    /** Nominal link-down time across those flaps. */
    TimeNs down_time = 0.0;

    /** Failed transfer attempts (each retried after backoff). */
    std::uint64_t retries = 0;

    /** Wire bytes moved by failed attempts and re-sent. */
    Bytes lost_bytes = 0.0;

    /** Transfers that ran out of retry budget (fatal failures). */
    std::uint64_t fatal_retries = 0;

    /**
     * Retry-backoff tail (ns) from the dimension's telemetry
     * histogram: p99 and worst backoff actually scheduled. Negative
     * renders as "-" (no retries on the dimension).
     */
    double backoff_p99 = -1.0;
    double backoff_max = -1.0;
};

/** Render per-dimension fault/retry rows as a standard table. */
std::string renderFaultTable(const std::vector<FaultDimRow>& rows);

/** Column-aligned monospace table for terminal reports. */
class TextTable
{
  public:
    /** @param headers column titles. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must match the header arity. */
    void addRow(const std::vector<std::string>& cells);

    /** Render with padding and a header underline. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace themis::stats

#endif // THEMIS_STATS_SUMMARY_HPP
