/**
 * @file
 * Average bandwidth-utilization measurement (paper Fig 4 definition).
 *
 * The paper measures utilization only while the workload has pending
 * communication ("excluding the times when there is no pending
 * communication operation"), weighting per-dimension utilization by
 * the dimension's bandwidth budget. Equivalently: bytes progressed
 * during communication-active windows, divided by (total bandwidth x
 * active time).
 *
 * The runtime opens a window when the number of outstanding
 * collectives becomes non-zero and closes it when it returns to zero;
 * this class snapshots per-channel progressed bytes at the window
 * edges.
 */

#ifndef THEMIS_STATS_UTILIZATION_TRACKER_HPP
#define THEMIS_STATS_UTILIZATION_TRACKER_HPP

#include <vector>

#include "common/units.hpp"
#include "sim/shared_channel.hpp"

namespace themis::stats {

/** Windowed per-dimension byte/bandwidth accounting. */
class UtilizationTracker
{
  public:
    /**
     * @param channels one shared channel per (global) dimension;
     *        must outlive the tracker
     * @param bandwidths matching per-dimension aggregate bandwidths
     */
    UtilizationTracker(std::vector<sim::SharedChannel*> channels,
                       std::vector<Bandwidth> bandwidths);

    /** Open a communication-active window at @p when. */
    void windowStart(TimeNs when);

    /** Close the current window at @p when. */
    void windowEnd(TimeNs when);

    /** True when a window is currently open. */
    bool windowOpen() const { return open_; }

    /**
     * Iteration-epoch reset: zero the closed-window accumulators so
     * the next finish-of-epoch read returns per-iteration values
     * (asserts no window is open). Pairs with
     * SharedChannel::epochReset() — the channels' progressed-byte
     * counters restart at zero, so the next windowStart() snapshot is
     * taken in the fresh frame.
     */
    void epochReset();

    /** Total closed communication-active time. */
    TimeNs activeTime() const { return active_time_; }

    /** Bytes progressed per dimension during closed windows. */
    const std::vector<Bytes>& windowBytes() const { return bytes_; }

    /**
     * Bytes progressed per flow class (summed over dimensions)
     * during closed windows. Indexed by priority class; classes the
     * channels never saw are absent.
     */
    const std::vector<Bytes>& classWindowBytes() const
    {
        return class_bytes_;
    }

    /**
     * Class share of the machine during closed windows:
     * class bytes / (sum(BW_k) * activeTime()). Zero for unseen
     * classes or when no time has been measured. Sums to
     * weightedUtilization() over all classes.
     */
    double classUtilization(int cls) const;

    /**
     * Weighted average utilization over closed windows:
     * sum(bytes_k) / (sum(BW_k) * activeTime()). Zero when no time
     * has been measured.
     */
    double weightedUtilization() const;

    /** Per-dimension utilization bytes_k / (BW_k * activeTime()). */
    std::vector<double> perDimUtilization() const;

  private:
    std::vector<Bytes> snapshot() const;
    /** Per-class progressed bytes summed over channels. */
    std::vector<Bytes> classSnapshot() const;

    std::vector<sim::SharedChannel*> channels_;
    std::vector<Bandwidth> bandwidths_;
    std::vector<Bytes> bytes_;
    std::vector<Bytes> class_bytes_;
    std::vector<Bytes> window_open_snapshot_;
    std::vector<Bytes> window_open_class_snapshot_;
    TimeNs active_time_ = 0.0;
    TimeNs window_open_at_ = 0.0;
    bool open_ = false;
};

} // namespace themis::stats

#endif // THEMIS_STATS_UTILIZATION_TRACKER_HPP
