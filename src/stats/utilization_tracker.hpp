/**
 * @file
 * Average bandwidth-utilization measurement (paper Fig 4 definition).
 *
 * The paper measures utilization only while the workload has pending
 * communication ("excluding the times when there is no pending
 * communication operation"), weighting per-dimension utilization by
 * the dimension's bandwidth budget. Equivalently: bytes progressed
 * during communication-active windows, divided by (total bandwidth x
 * active time).
 *
 * The runtime opens a window when the number of outstanding
 * collectives becomes non-zero and closes it when it returns to zero;
 * this class snapshots per-channel progressed bytes at the window
 * edges.
 */

#ifndef THEMIS_STATS_UTILIZATION_TRACKER_HPP
#define THEMIS_STATS_UTILIZATION_TRACKER_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "common/units.hpp"
#include "sim/shared_channel.hpp"
#include "stats/telemetry/metrics.hpp"

namespace themis::stats {

/** Windowed per-dimension byte/bandwidth accounting. */
class UtilizationTracker
{
  public:
    /**
     * @param channels one shared channel per (global) dimension;
     *        must outlive the tracker
     * @param bandwidths matching per-dimension aggregate bandwidths
     */
    UtilizationTracker(std::vector<sim::SharedChannel*> channels,
                       std::vector<Bandwidth> bandwidths);

    /** Open a communication-active window at @p when. */
    void windowStart(TimeNs when);

    /** Close the current window at @p when. */
    void windowEnd(TimeNs when);

    /** True when a window is currently open. */
    bool windowOpen() const { return open_; }

    /**
     * Iteration-epoch reset: zero the closed-window accumulators so
     * the next finish-of-epoch read returns per-iteration values
     * (asserts no window is open). Pairs with
     * SharedChannel::epochReset() — the channels' progressed-byte
     * counters restart at zero, so the next windowStart() snapshot is
     * taken in the fresh frame.
     */
    void epochReset();

    /** Total closed communication-active time. */
    TimeNs activeTime() const { return active_time_; }

    /** Bytes progressed per dimension during closed windows. */
    const std::vector<Bytes>& windowBytes() const { return bytes_; }

    /**
     * Bytes progressed per flow class (summed over dimensions)
     * during closed windows, keyed by priority class; classes the
     * channels never saw (or that were retired) are absent.
     */
    const std::map<int, Bytes>& classWindowBytes() const
    {
        return class_bytes_;
    }

    /**
     * Class share of the machine during closed windows:
     * class bytes / (sum(BW_k) * activeTime()). Zero for unseen
     * classes or when no time has been measured. Sums to
     * weightedUtilization() over all classes.
     */
    double classUtilization(int cls) const;

    /**
     * @p bytes as a share of the machine over the measured active
     * time: bytes / (sum(BW_k) * activeTime()). Zero when no time has
     * been measured. This is the conversion classUtilization() applies
     * — exposed so callers holding retired-class byte totals can turn
     * them into utilization shares consistent with live classes.
     */
    double utilizationOf(Bytes bytes) const;

    /**
     * Drop one class's window accounting and return the bytes it
     * progressed during windows so far — including, when a window is
     * currently open, the fraction accumulated since the window
     * opened (settled against the channels' current synced counters).
     * Keeps a churning multi-tenant tracker O(active classes). Call
     * *before* the channels forget the class.
     */
    Bytes retireClass(int cls);

    /** Number of classes currently tracked (O(active) proof). */
    std::size_t trackedClassCount() const
    {
        return class_bytes_.size();
    }

    /**
     * Weighted average utilization over closed windows:
     * sum(bytes_k) / (sum(BW_k) * activeTime()). Zero when no time
     * has been measured.
     */
    double weightedUtilization() const;

    /** Per-dimension utilization bytes_k / (BW_k * activeTime()). */
    std::vector<double> perDimUtilization() const;

    /**
     * Record one failed attempt on @p dim wasting @p lost bytes and
     * backing off for @p backoff_ns before the requeue.
     */
    void recordRetry(std::size_t dim, Bytes lost, TimeNs backoff_ns);

    /** Record one flap on @p dim with nominal down-window @p dur. */
    void recordFlap(std::size_t dim, TimeNs dur);

    /** Record one capacity step (degrade/straggler edge) on @p dim. */
    void recordCapacityEvent(std::size_t dim);

    /** Record one retry-budget exhaustion on @p dim (fatal). */
    void recordFatalRetry(std::size_t dim);

    /** Failed attempts per dimension (since last epochReset). */
    const std::vector<std::uint64_t>& retries() const
    {
        return retries_;
    }

    /** Re-sent wire bytes per dimension (since last epochReset). */
    const std::vector<Bytes>& retryLostBytes() const
    {
        return retry_lost_bytes_;
    }

    /** Flap count per dimension (since last epochReset). */
    const std::vector<std::uint64_t>& flaps() const { return flaps_; }

    /** Nominal link-down time per dimension (since last epochReset). */
    const std::vector<TimeNs>& downTime() const { return down_time_; }

    /** Capacity steps per dimension (since last epochReset). */
    const std::vector<std::uint64_t>& capacityEvents() const
    {
        return capacity_events_;
    }

    /** Retry-budget exhaustions per dimension. */
    const std::vector<std::uint64_t>& fatalRetries() const
    {
        return fatal_retries_;
    }

    /**
     * Retry-backoff distribution per dimension (since last
     * epochReset) — the source of the fault table's tail columns.
     */
    const telemetry::Histogram& retryBackoff(std::size_t dim) const
    {
        return retry_backoff_[dim];
    }

  private:
    std::vector<Bytes> snapshot() const;
    /** Per-class progressed bytes summed over channels. */
    std::map<int, Bytes> classSnapshot() const;

    std::vector<sim::SharedChannel*> channels_;
    std::vector<Bandwidth> bandwidths_;
    std::vector<Bytes> bytes_;
    /**
     * Closed-window bytes per class, keyed by class index — a map,
     * not a dense vector, because cluster jobs stride the class space
     * and a dense vector would grow with every tenant ever admitted.
     * retireClass() erases departed tenants.
     */
    std::map<int, Bytes> class_bytes_;
    std::vector<Bytes> window_open_snapshot_;
    std::map<int, Bytes> window_open_class_snapshot_;
    TimeNs active_time_ = 0.0;
    TimeNs window_open_at_ = 0.0;
    bool open_ = false;
    /** Fault accounting, indexed by dimension (fault engine). */
    std::vector<std::uint64_t> retries_;
    std::vector<Bytes> retry_lost_bytes_;
    std::vector<std::uint64_t> flaps_;
    std::vector<TimeNs> down_time_;
    std::vector<std::uint64_t> capacity_events_;
    std::vector<std::uint64_t> fatal_retries_;
    std::vector<telemetry::Histogram> retry_backoff_;
};

} // namespace themis::stats

#endif // THEMIS_STATS_UTILIZATION_TRACKER_HPP
