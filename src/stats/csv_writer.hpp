/**
 * @file
 * Minimal CSV emitter for bench outputs (one file per figure/table).
 */

#ifndef THEMIS_STATS_CSV_WRITER_HPP
#define THEMIS_STATS_CSV_WRITER_HPP

#include <fstream>
#include <string>
#include <vector>

namespace themis::stats {

/** Writes rows of stringified cells; commas/quotes are escaped. */
class CsvWriter
{
  public:
    /** Open @p path for writing; throws ConfigError on failure. */
    explicit CsvWriter(const std::string& path);

    /** Write one row. */
    void writeRow(const std::vector<std::string>& cells);

    /** Flush and close (also done by the destructor). */
    void close();

    ~CsvWriter();

    CsvWriter(const CsvWriter&) = delete;
    CsvWriter& operator=(const CsvWriter&) = delete;

  private:
    std::ofstream out_;
};

} // namespace themis::stats

#endif // THEMIS_STATS_CSV_WRITER_HPP
