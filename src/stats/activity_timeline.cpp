#include "stats/activity_timeline.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace themis::stats {

ActivityTimeline::ActivityTimeline(int num_dims)
    : dims_(static_cast<std::size_t>(num_dims))
{
    THEMIS_ASSERT(num_dims > 0, "need at least one dimension");
}

void
ActivityTimeline::onPresence(int dim, bool present, TimeNs when)
{
    THEMIS_ASSERT(dim >= 0 && dim < static_cast<int>(dims_.size()),
                  "bad dimension " << dim);
    THEMIS_ASSERT(!finalized_, "presence change after finalize()");
    auto& st = dims_[static_cast<std::size_t>(dim)];
    if (present == st.present)
        return; // idempotent duplicate notification
    if (present) {
        st.present = true;
        st.since = when;
    } else {
        st.present = false;
        if (when > st.since)
            st.intervals.emplace_back(st.since, when);
    }
}

void
ActivityTimeline::finalize(TimeNs end)
{
    if (finalized_)
        return;
    for (auto& st : dims_) {
        if (st.present && end > st.since)
            st.intervals.emplace_back(st.since, end);
        st.present = false;
    }
    finalized_ = true;
}

void
ActivityTimeline::reset()
{
    for (auto& st : dims_) {
        THEMIS_ASSERT(!st.present,
                      "resetting the timeline mid-interval");
        st.intervals.clear();
        st.since = 0.0;
    }
    finalized_ = false;
}

const std::vector<std::pair<TimeNs, TimeNs>>&
ActivityTimeline::intervals(int dim) const
{
    THEMIS_ASSERT(dim >= 0 && dim < static_cast<int>(dims_.size()),
                  "bad dimension " << dim);
    return dims_[static_cast<std::size_t>(dim)].intervals;
}

TimeNs
ActivityTimeline::busyTime(int dim) const
{
    TimeNs total = 0.0;
    for (const auto& [s, e] : intervals(dim))
        total += e - s;
    return total;
}

ActivityTimeline::Profile
ActivityTimeline::profile(TimeNs bucket_ns, TimeNs end) const
{
    THEMIS_ASSERT(finalized_, "profile() requires finalize()");
    THEMIS_ASSERT(bucket_ns > 0.0, "bucket must be positive");
    Profile p;
    p.bucket_ns = bucket_ns;
    const auto buckets =
        static_cast<std::size_t>(std::ceil(end / bucket_ns));
    p.rate.assign(dims_.size(), std::vector<double>(buckets, 0.0));
    for (std::size_t d = 0; d < dims_.size(); ++d) {
        for (const auto& [s, e] : dims_[d].intervals) {
            // Spread the interval across the buckets it covers.
            std::size_t b0 = static_cast<std::size_t>(s / bucket_ns);
            std::size_t b1 = static_cast<std::size_t>(
                std::min(e / bucket_ns,
                         static_cast<double>(buckets - 1)));
            for (std::size_t b = b0; b <= b1 && b < buckets; ++b) {
                const TimeNs lo = std::max<TimeNs>(
                    s, static_cast<double>(b) * bucket_ns);
                const TimeNs hi = std::min<TimeNs>(
                    e, static_cast<double>(b + 1) * bucket_ns);
                if (hi > lo)
                    p.rate[d][b] += (hi - lo) / bucket_ns;
            }
        }
    }
    return p;
}

} // namespace themis::stats
