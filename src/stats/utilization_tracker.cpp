#include "stats/utilization_tracker.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace themis::stats {

UtilizationTracker::UtilizationTracker(
    std::vector<sim::SharedChannel*> channels,
    std::vector<Bandwidth> bandwidths)
    : channels_(std::move(channels)), bandwidths_(std::move(bandwidths)),
      bytes_(channels_.size(), 0.0)
{
    THEMIS_ASSERT(!channels_.empty(), "no channels to track");
    THEMIS_ASSERT(channels_.size() == bandwidths_.size(),
                  "channel/bandwidth count mismatch");
    for (auto* c : channels_)
        THEMIS_ASSERT(c != nullptr, "null channel");
}

std::vector<Bytes>
UtilizationTracker::snapshot() const
{
    std::vector<Bytes> snap(channels_.size());
    for (std::size_t i = 0; i < channels_.size(); ++i) {
        channels_[i]->sync();
        snap[i] = channels_[i]->progressedBytes();
    }
    return snap;
}

std::vector<Bytes>
UtilizationTracker::classSnapshot() const
{
    // snapshot() runs first within every window edge, so channels are
    // already synced here.
    std::size_t num_classes = 0;
    for (const auto* c : channels_)
        num_classes = std::max(
            num_classes, static_cast<std::size_t>(c->numClasses()));
    std::vector<Bytes> snap(num_classes, 0.0);
    for (const auto* c : channels_)
        for (std::size_t cls = 0; cls < num_classes; ++cls)
            snap[cls] +=
                c->classProgressedBytes(static_cast<int>(cls));
    return snap;
}

void
UtilizationTracker::epochReset()
{
    THEMIS_ASSERT(!open_, "epoch reset inside an open window");
    active_time_ = 0.0;
    std::fill(bytes_.begin(), bytes_.end(), 0.0);
    class_bytes_.clear();
}

void
UtilizationTracker::windowStart(TimeNs when)
{
    THEMIS_ASSERT(!open_, "window already open");
    open_ = true;
    window_open_at_ = when;
    window_open_snapshot_ = snapshot();
    window_open_class_snapshot_ = classSnapshot();
}

void
UtilizationTracker::windowEnd(TimeNs when)
{
    THEMIS_ASSERT(open_, "no window open");
    THEMIS_ASSERT(when >= window_open_at_, "window ends before start");
    open_ = false;
    active_time_ += when - window_open_at_;
    const auto snap = snapshot();
    for (std::size_t i = 0; i < bytes_.size(); ++i)
        bytes_[i] += snap[i] - window_open_snapshot_[i];
    // Classes may have appeared mid-window; absent open-snapshot
    // entries started the window at zero progressed bytes.
    const auto class_snap = classSnapshot();
    if (class_bytes_.size() < class_snap.size())
        class_bytes_.resize(class_snap.size(), 0.0);
    for (std::size_t c = 0; c < class_snap.size(); ++c) {
        const Bytes before = c < window_open_class_snapshot_.size()
                                 ? window_open_class_snapshot_[c]
                                 : 0.0;
        class_bytes_[c] += class_snap[c] - before;
    }
}

double
UtilizationTracker::weightedUtilization() const
{
    if (active_time_ <= 0.0)
        return 0.0;
    Bytes total_bytes = 0.0;
    Bandwidth total_bw = 0.0;
    for (std::size_t i = 0; i < bytes_.size(); ++i) {
        total_bytes += bytes_[i];
        total_bw += bandwidths_[i];
    }
    return total_bytes / (total_bw * active_time_);
}

double
UtilizationTracker::classUtilization(int cls) const
{
    if (active_time_ <= 0.0 || cls < 0 ||
        cls >= static_cast<int>(class_bytes_.size()))
        return 0.0;
    Bandwidth total_bw = 0.0;
    for (Bandwidth bw : bandwidths_)
        total_bw += bw;
    return class_bytes_[static_cast<std::size_t>(cls)] /
           (total_bw * active_time_);
}

std::vector<double>
UtilizationTracker::perDimUtilization() const
{
    std::vector<double> out(bytes_.size(), 0.0);
    if (active_time_ <= 0.0)
        return out;
    for (std::size_t i = 0; i < bytes_.size(); ++i)
        out[i] = bytes_[i] / (bandwidths_[i] * active_time_);
    return out;
}

} // namespace themis::stats
