#include "stats/utilization_tracker.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace themis::stats {

UtilizationTracker::UtilizationTracker(
    std::vector<sim::SharedChannel*> channels,
    std::vector<Bandwidth> bandwidths)
    : channels_(std::move(channels)), bandwidths_(std::move(bandwidths)),
      bytes_(channels_.size(), 0.0), retries_(channels_.size(), 0),
      retry_lost_bytes_(channels_.size(), 0.0),
      flaps_(channels_.size(), 0), down_time_(channels_.size(), 0.0),
      capacity_events_(channels_.size(), 0),
      fatal_retries_(channels_.size(), 0),
      retry_backoff_(channels_.size())
{
    THEMIS_ASSERT(!channels_.empty(), "no channels to track");
    THEMIS_ASSERT(channels_.size() == bandwidths_.size(),
                  "channel/bandwidth count mismatch");
    for (auto* c : channels_)
        THEMIS_ASSERT(c != nullptr, "null channel");
}

std::vector<Bytes>
UtilizationTracker::snapshot() const
{
    std::vector<Bytes> snap(channels_.size());
    for (std::size_t i = 0; i < channels_.size(); ++i) {
        channels_[i]->sync();
        snap[i] = channels_[i]->progressedBytes();
    }
    return snap;
}

std::map<int, Bytes>
UtilizationTracker::classSnapshot() const
{
    // snapshot() runs first within every window edge, so channels are
    // already synced here. Only classes a channel currently tracks
    // appear — O(active classes), however many tenants ever churned.
    std::map<int, Bytes> snap;
    for (const auto* c : channels_)
        for (const int cls : c->classIds())
            snap[cls] += c->classProgressedBytes(cls);
    return snap;
}

void
UtilizationTracker::epochReset()
{
    THEMIS_ASSERT(!open_, "epoch reset inside an open window");
    active_time_ = 0.0;
    std::fill(bytes_.begin(), bytes_.end(), 0.0);
    class_bytes_.clear();
    std::fill(retries_.begin(), retries_.end(), 0);
    std::fill(retry_lost_bytes_.begin(), retry_lost_bytes_.end(), 0.0);
    std::fill(flaps_.begin(), flaps_.end(), 0);
    std::fill(down_time_.begin(), down_time_.end(), 0.0);
    std::fill(capacity_events_.begin(), capacity_events_.end(), 0);
    for (auto& h : retry_backoff_)
        h.reset();
}

void
UtilizationTracker::recordRetry(std::size_t dim, Bytes lost,
                                TimeNs backoff_ns)
{
    THEMIS_ASSERT(dim < retries_.size(), "retry on unknown dim");
    ++retries_[dim];
    retry_lost_bytes_[dim] += lost;
    retry_backoff_[dim].record(backoff_ns);
}

void
UtilizationTracker::recordFlap(std::size_t dim, TimeNs dur)
{
    THEMIS_ASSERT(dim < flaps_.size(), "flap on unknown dim");
    ++flaps_[dim];
    down_time_[dim] += dur;
}

void
UtilizationTracker::recordCapacityEvent(std::size_t dim)
{
    THEMIS_ASSERT(dim < capacity_events_.size(),
                  "capacity event on unknown dim");
    ++capacity_events_[dim];
}

void
UtilizationTracker::recordFatalRetry(std::size_t dim)
{
    THEMIS_ASSERT(dim < fatal_retries_.size(),
                  "fatal retry on unknown dim");
    ++fatal_retries_[dim];
}

void
UtilizationTracker::windowStart(TimeNs when)
{
    THEMIS_ASSERT(!open_, "window already open");
    open_ = true;
    window_open_at_ = when;
    window_open_snapshot_ = snapshot();
    window_open_class_snapshot_ = classSnapshot();
}

void
UtilizationTracker::windowEnd(TimeNs when)
{
    THEMIS_ASSERT(open_, "no window open");
    THEMIS_ASSERT(when >= window_open_at_, "window ends before start");
    open_ = false;
    active_time_ += when - window_open_at_;
    const auto snap = snapshot();
    for (std::size_t i = 0; i < bytes_.size(); ++i)
        bytes_[i] += snap[i] - window_open_snapshot_[i];
    // Classes may have appeared mid-window; absent open-snapshot
    // entries started the window at zero progressed bytes. Classes
    // retired mid-window were settled by retireClass() and are absent
    // from both maps here.
    const auto class_snap = classSnapshot();
    for (const auto& [cls, bytes] : class_snap) {
        const auto it = window_open_class_snapshot_.find(cls);
        const Bytes before =
            it != window_open_class_snapshot_.end() ? it->second : 0.0;
        class_bytes_[cls] += bytes - before;
    }
}

double
UtilizationTracker::weightedUtilization() const
{
    if (active_time_ <= 0.0)
        return 0.0;
    Bytes total_bytes = 0.0;
    Bandwidth total_bw = 0.0;
    for (std::size_t i = 0; i < bytes_.size(); ++i) {
        total_bytes += bytes_[i];
        total_bw += bandwidths_[i];
    }
    return total_bytes / (total_bw * active_time_);
}

double
UtilizationTracker::classUtilization(int cls) const
{
    const auto it = class_bytes_.find(cls);
    if (it == class_bytes_.end())
        return 0.0;
    return utilizationOf(it->second);
}

double
UtilizationTracker::utilizationOf(Bytes bytes) const
{
    if (active_time_ <= 0.0)
        return 0.0;
    Bandwidth total_bw = 0.0;
    for (Bandwidth bw : bandwidths_)
        total_bw += bw;
    return bytes / (total_bw * active_time_);
}

Bytes
UtilizationTracker::retireClass(int cls)
{
    Bytes total = 0.0;
    if (open_) {
        // Settle the open-window fraction first: what the class moved
        // since the window opened would otherwise vanish when the
        // window closes over a snapshot that no longer contains it.
        Bytes current = 0.0;
        for (auto* c : channels_) {
            c->sync();
            current += c->classProgressedBytes(cls);
        }
        const auto it = window_open_class_snapshot_.find(cls);
        const Bytes before =
            it != window_open_class_snapshot_.end() ? it->second : 0.0;
        total += current - before;
        if (it != window_open_class_snapshot_.end())
            window_open_class_snapshot_.erase(it);
    }
    const auto it = class_bytes_.find(cls);
    if (it != class_bytes_.end()) {
        total += it->second;
        class_bytes_.erase(it);
    }
    return total;
}

std::vector<double>
UtilizationTracker::perDimUtilization() const
{
    std::vector<double> out(bytes_.size(), 0.0);
    if (active_time_ <= 0.0)
        return out;
    for (std::size_t i = 0; i < bytes_.size(); ++i)
        out[i] = bytes_[i] / (bandwidths_[i] * active_time_);
    return out;
}

} // namespace themis::stats
