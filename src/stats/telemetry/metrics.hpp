/**
 * @file
 * MetricsRegistry: the simulator's unified metric store.
 *
 * Three instrument kinds, all owned by a registry and addressed by
 * stable dotted names (`runtime.collectives.issued`, `fault.retries`,
 * `cluster.job.<id>.deadline_slack_ns`, ...):
 *
 *  - Counter: monotonically increasing 64-bit event count.
 *  - Gauge: last-written double (snapshot values such as per-dim
 *    progressed bytes or capacities).
 *  - Histogram: fixed 64-bucket log2 histogram with exact count, sum,
 *    min and max. Percentile queries return the bucket upper bound
 *    clamped into [min, max], which makes them deterministic and
 *    allocation-free at record time -- good enough for p50/p90/p99
 *    tail reporting without storing samples.
 *
 * Design constraints, both load-bearing:
 *
 *  - Instruments are pure observers. Nothing in here may feed an
 *    epoch fingerprint or schedule an event, so enabling telemetry is
 *    bit-identical to running without it (asserted by telemetry_test
 *    and bench/telemetry_overhead.cpp).
 *  - Not thread-safe. One registry belongs to one simulation thread;
 *    grid sweeps use a registry per worker (or none) and aggregate on
 *    the main thread.
 *
 * Instrument references returned by counter()/gauge()/histogram() are
 * stable for the life of the registry (std::map nodes never move), so
 * hot paths resolve a name once and keep the pointer.
 */

#ifndef THEMIS_STATS_TELEMETRY_METRICS_HPP
#define THEMIS_STATS_TELEMETRY_METRICS_HPP

#include <array>
#include <cstdint>
#include <map>
#include <string>

namespace themis::stats::telemetry {

/** Monotonic event counter. */
class Counter
{
public:
    void add(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

private:
    std::uint64_t value_ = 0;
};

/** Last-written snapshot value. */
class Gauge
{
public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

private:
    double value_ = 0.0;
};

/**
 * Fixed-bucket log2 histogram. Bucket 0 collects every value below
 * 1.0 (including zero and negatives, which deadline slack produces);
 * bucket b >= 1 collects [2^(b-1), 2^b). Values past the last bucket
 * boundary saturate into the final bucket; exact min/max are kept so
 * the tails stay truthful.
 */
class Histogram
{
public:
    static constexpr int kBuckets = 64;

    void record(double v);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    /** Exact smallest / largest recorded value; 0 when empty. */
    double min() const { return count_ == 0 ? 0.0 : min_; }
    double max() const { return count_ == 0 ? 0.0 : max_; }
    double mean() const
    {
        return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    }

    /**
     * Deterministic percentile estimate for @p p in [0, 1]: the upper
     * bound of the bucket holding the rank-ceil(p*count) sample,
     * clamped into [min(), max()]. Returns 0 when empty.
     */
    double percentile(double p) const;

    std::uint64_t bucketCount(int b) const { return buckets_[b]; }

    /** Bucket index for @p v (see class comment). */
    static int bucketOf(double v);
    /** Upper bound of bucket @p b (1.0 for bucket 0). */
    static double bucketUpperBound(int b);

    void reset();

private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Named instrument store. Lookup creates on first use; iteration is
 * name-sorted so serialized snapshots are deterministic.
 */
class MetricsRegistry
{
public:
    Counter& counter(const std::string& name)
    {
        return counters_[name];
    }
    Gauge& gauge(const std::string& name) { return gauges_[name]; }
    Histogram& histogram(const std::string& name)
    {
        return histograms_[name];
    }

    /** Read-only lookups; nullptr when the name was never used. */
    const Counter* findCounter(const std::string& name) const;
    const Gauge* findGauge(const std::string& name) const;
    const Histogram* findHistogram(const std::string& name) const;

    const std::map<std::string, Counter>& counters() const
    {
        return counters_;
    }
    const std::map<std::string, Gauge>& gauges() const
    {
        return gauges_;
    }
    const std::map<std::string, Histogram>& histograms() const
    {
        return histograms_;
    }

    /** Total number of registered instruments across all kinds. */
    std::size_t size() const
    {
        return counters_.size() + gauges_.size() + histograms_.size();
    }

    /** Zero every instrument; names stay registered. */
    void reset();

private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace themis::stats::telemetry

#endif // THEMIS_STATS_TELEMETRY_METRICS_HPP
