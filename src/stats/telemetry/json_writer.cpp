#include "stats/telemetry/json_writer.hpp"

#include <cmath>
#include <cstdio>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace themis::stats::telemetry {

void
JsonWriter::beforeValue()
{
    if (pending_key_) {
        pending_key_ = false;
        return;
    }
    if (!has_elem_.empty()) {
        if (has_elem_.back())
            out_ += ',';
        has_elem_.back() = true;
    }
}

JsonWriter&
JsonWriter::beginObject()
{
    beforeValue();
    out_ += '{';
    has_elem_.push_back(false);
    return *this;
}

JsonWriter&
JsonWriter::endObject()
{
    THEMIS_ASSERT(!has_elem_.empty(), "endObject with nothing open");
    has_elem_.pop_back();
    out_ += '}';
    return *this;
}

JsonWriter&
JsonWriter::beginArray()
{
    beforeValue();
    out_ += '[';
    has_elem_.push_back(false);
    return *this;
}

JsonWriter&
JsonWriter::endArray()
{
    THEMIS_ASSERT(!has_elem_.empty(), "endArray with nothing open");
    has_elem_.pop_back();
    out_ += ']';
    return *this;
}

JsonWriter&
JsonWriter::key(const std::string& k)
{
    THEMIS_ASSERT(!pending_key_, "key after key");
    if (!has_elem_.empty()) {
        if (has_elem_.back())
            out_ += ',';
        has_elem_.back() = true;
    }
    out_ += '"';
    out_ += jsonEscape(k);
    out_ += "\":";
    pending_key_ = true;
    return *this;
}

JsonWriter&
JsonWriter::value(const std::string& v)
{
    beforeValue();
    out_ += '"';
    out_ += jsonEscape(v);
    out_ += '"';
    return *this;
}

JsonWriter&
JsonWriter::value(const char* v)
{
    return value(std::string(v));
}

JsonWriter&
JsonWriter::value(double v)
{
    beforeValue();
    if (!std::isfinite(v)) {
        out_ += "null";
        return *this;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
    return *this;
}

JsonWriter&
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out_ += buf;
    return *this;
}

JsonWriter&
JsonWriter::value(int v)
{
    beforeValue();
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%d", v);
    out_ += buf;
    return *this;
}

JsonWriter&
JsonWriter::value(bool v)
{
    beforeValue();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter&
JsonWriter::raw(const std::string& json)
{
    beforeValue();
    out_ += json;
    return *this;
}

std::string
JsonWriter::str() const
{
    THEMIS_ASSERT(has_elem_.empty() && !pending_key_,
                  "unbalanced JSON document");
    return out_;
}

} // namespace themis::stats::telemetry
