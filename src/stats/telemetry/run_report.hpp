/**
 * @file
 * RunReport: the machine-readable end-of-run artifact behind the
 * CLI's `--report PATH` flag.
 *
 * One JSON object with a versioned schema (kSchemaVersion bumps on any
 * breaking shape change):
 *
 *   {
 *     "schema": "themis.run_report/1",
 *     "mode":   "jobs" | "single" | "iterations" | "grid" | "serve"
 *               | "priority" | "fatal",
 *     "info":    { string key/values: topology, scheduler, flags },
 *     "numbers": { scalar key/values: makespan_ns, utilization, ... },
 *     <sections...>: mode-specific objects/arrays added by the caller
 *                    (e.g. "jobs": [...], "convergence": {...}),
 *     "metrics": { "counters": {name: n}, "gauges": {name: v},
 *                  "histograms": {name: {count,sum,min,max,mean,
 *                                        p50,p90,p99}} },
 *     "flight_recorder": { "capacity", "recorded", "dropped",
 *                          "events": [{at,kind,dim,aux,value}] }
 *   }
 *
 * Key order inside info/numbers/metrics is name-sorted (std::map), so
 * two identical runs serialize byte-identically -- the same property
 * the result store relies on for its merge checks.
 */

#ifndef THEMIS_STATS_TELEMETRY_RUN_REPORT_HPP
#define THEMIS_STATS_TELEMETRY_RUN_REPORT_HPP

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace themis::stats::telemetry {

class FlightRecorder;
class MetricsRegistry;

class RunReport
{
public:
    static constexpr const char* kSchemaVersion = "themis.run_report/1";

    explicit RunReport(std::string mode);

    /** String fact (topology name, scheduler, fault spec, ...). */
    void setInfo(const std::string& key, const std::string& value);

    /** Scalar fact (makespan_ns, utilization, replans, ...). */
    void setNumber(const std::string& key, double value);

    /**
     * Mode-specific top-level section: @p json must be a complete
     * JSON value (object or array), typically built with JsonWriter.
     * Section names must be unique and must not collide with the
     * fixed keys (schema/mode/info/numbers/metrics/flight_recorder).
     */
    void addSection(const std::string& name, const std::string& json);

    /** Borrow the registry / recorder to snapshot at toJson() time. */
    void attachMetrics(const MetricsRegistry* metrics);
    void attachRecorder(const FlightRecorder* recorder);

    const std::string& mode() const { return mode_; }

    std::string toJson() const;
    void writeFile(const std::string& path) const;

private:
    std::string mode_;
    std::map<std::string, std::string> info_;
    std::map<std::string, double> numbers_;
    std::vector<std::pair<std::string, std::string>> sections_;
    const MetricsRegistry* metrics_ = nullptr;
    const FlightRecorder* recorder_ = nullptr;
};

} // namespace themis::stats::telemetry

#endif // THEMIS_STATS_TELEMETRY_RUN_REPORT_HPP
