#include "stats/telemetry/flight_recorder.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace themis::stats::telemetry {

const char*
flightKindName(FlightKind kind)
{
    switch (kind) {
    case FlightKind::CollectiveIssued:
        return "collective-issued";
    case FlightKind::CollectiveDone:
        return "collective-done";
    case FlightKind::FaultEvent:
        return "fault-event";
    case FlightKind::Retry:
        return "retry";
    case FlightKind::FatalRetry:
        return "fatal-retry";
    case FlightKind::Replan:
        return "re-plan";
    case FlightKind::DeadlineMiss:
        return "deadline-miss";
    case FlightKind::EpochClosed:
        return "epoch-closed";
    case FlightKind::ReplaySkip:
        return "replay-skip";
    }
    return "?";
}

std::string
describeFlightEvent(const FlightEvent& e)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "t=%.0f ns %-17s dim=%-3d aux=%-3d value=%.6g",
                  e.at, flightKindName(e.kind), e.dim, e.aux, e.value);
    return buf;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity)
{
    THEMIS_ASSERT(capacity_ > 0, "flight recorder needs capacity > 0");
    ring_.reserve(capacity_);
}

void
FlightRecorder::record(const FlightEvent& e)
{
    if (ring_.size() < capacity_) {
        ring_.push_back(e);
    } else {
        ring_[next_] = e;
        next_ = (next_ + 1) % capacity_;
    }
    ++total_;
}

std::size_t
FlightRecorder::size() const
{
    return ring_.size();
}

std::vector<FlightEvent>
FlightRecorder::events() const
{
    std::vector<FlightEvent> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(next_ + i) % ring_.size()]);
    return out;
}

void
FlightRecorder::clear()
{
    ring_.clear();
    next_ = 0;
    total_ = 0;
}

} // namespace themis::stats::telemetry
