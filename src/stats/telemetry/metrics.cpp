#include "stats/telemetry/metrics.hpp"

#include <cmath>

namespace themis::stats::telemetry {

int
Histogram::bucketOf(double v)
{
    if (!(v >= 1.0))
        return 0; // below 1.0, zero, negative, NaN
    int exp = 0;
    (void)std::frexp(v, &exp); // v = m * 2^exp, m in [0.5, 1)
    if (exp >= kBuckets)
        return kBuckets - 1;
    return exp;
}

double
Histogram::bucketUpperBound(int b)
{
    if (b <= 0)
        return 1.0;
    return std::ldexp(1.0, b); // 2^b
}

void
Histogram::record(double v)
{
    ++buckets_[static_cast<std::size_t>(bucketOf(v))];
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }
    ++count_;
    sum_ += v;
}

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    if (p < 0.0)
        p = 0.0;
    if (p > 1.0)
        p = 1.0;
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(count_)));
    if (rank < 1)
        rank = 1;
    std::uint64_t cum = 0;
    for (int b = 0; b < kBuckets; ++b) {
        cum += buckets_[static_cast<std::size_t>(b)];
        if (cum >= rank) {
            double v = bucketUpperBound(b);
            if (v < min_)
                v = min_;
            if (v > max_)
                v = max_;
            return v;
        }
    }
    return max_;
}

void
Histogram::reset()
{
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

const Counter*
MetricsRegistry::findCounter(const std::string& name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : &it->second;
}

const Gauge*
MetricsRegistry::findGauge(const std::string& name) const
{
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram*
MetricsRegistry::findHistogram(const std::string& name) const
{
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

void
MetricsRegistry::reset()
{
    for (auto& [name, c] : counters_)
        c.reset();
    for (auto& [name, g] : gauges_)
        g.reset();
    for (auto& [name, h] : histograms_)
        h.reset();
}

} // namespace themis::stats::telemetry
