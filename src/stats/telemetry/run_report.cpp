#include "stats/telemetry/run_report.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "stats/telemetry/flight_recorder.hpp"
#include "stats/telemetry/json_writer.hpp"
#include "stats/telemetry/metrics.hpp"

namespace themis::stats::telemetry {

RunReport::RunReport(std::string mode)
    : mode_(std::move(mode))
{
}

void
RunReport::setInfo(const std::string& key, const std::string& value)
{
    info_[key] = value;
}

void
RunReport::setNumber(const std::string& key, double value)
{
    numbers_[key] = value;
}

void
RunReport::addSection(const std::string& name, const std::string& json)
{
    THEMIS_ASSERT(name != "schema" && name != "mode" &&
                      name != "info" && name != "numbers" &&
                      name != "metrics" && name != "flight_recorder",
                  "section name collides with fixed key: " << name);
    for (const auto& [existing, unused] : sections_)
        THEMIS_ASSERT(existing != name,
                      "duplicate report section: " << name);
    sections_.emplace_back(name, json);
}

void
RunReport::attachMetrics(const MetricsRegistry* metrics)
{
    metrics_ = metrics;
}

void
RunReport::attachRecorder(const FlightRecorder* recorder)
{
    recorder_ = recorder;
}

std::string
RunReport::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value(kSchemaVersion);
    w.key("mode").value(mode_);

    w.key("info").beginObject();
    for (const auto& [k, v] : info_)
        w.key(k).value(v);
    w.endObject();

    w.key("numbers").beginObject();
    for (const auto& [k, v] : numbers_)
        w.key(k).value(v);
    w.endObject();

    for (const auto& [name, json] : sections_)
        w.key(name).raw(json);

    w.key("metrics").beginObject();
    {
        w.key("counters").beginObject();
        if (metrics_ != nullptr)
            for (const auto& [name, c] : metrics_->counters())
                w.key(name).value(c.value());
        w.endObject();

        w.key("gauges").beginObject();
        if (metrics_ != nullptr)
            for (const auto& [name, g] : metrics_->gauges())
                w.key(name).value(g.value());
        w.endObject();

        w.key("histograms").beginObject();
        if (metrics_ != nullptr) {
            for (const auto& [name, h] : metrics_->histograms()) {
                w.key(name).beginObject();
                w.key("count").value(h.count());
                w.key("sum").value(h.sum());
                w.key("min").value(h.min());
                w.key("max").value(h.max());
                w.key("mean").value(h.mean());
                w.key("p50").value(h.percentile(0.50));
                w.key("p90").value(h.percentile(0.90));
                w.key("p99").value(h.percentile(0.99));
                w.endObject();
            }
        }
        w.endObject();
    }
    w.endObject();

    w.key("flight_recorder").beginObject();
    if (recorder_ != nullptr) {
        w.key("capacity").value(
            static_cast<std::uint64_t>(recorder_->capacity()));
        w.key("recorded").value(recorder_->totalRecorded());
        w.key("dropped").value(recorder_->dropped());
        w.key("events").beginArray();
        for (const FlightEvent& e : recorder_->events()) {
            w.beginObject();
            w.key("at").value(e.at);
            w.key("kind").value(flightKindName(e.kind));
            w.key("dim").value(e.dim);
            w.key("aux").value(e.aux);
            w.key("value").value(e.value);
            w.endObject();
        }
        w.endArray();
    } else {
        w.key("capacity").value(0);
        w.key("recorded").value(std::uint64_t{0});
        w.key("dropped").value(std::uint64_t{0});
        w.key("events").beginArray().endArray();
    }
    w.endObject();

    w.endObject();
    return w.str() + "\n";
}

void
RunReport::writeFile(const std::string& path) const
{
    const std::string json = toJson();
    std::FILE* f = std::fopen(path.c_str(), "w");
    THEMIS_ASSERT(f != nullptr, "cannot open report file " << path);
    std::fputs(json.c_str(), f);
    std::fclose(f);
}

} // namespace themis::stats::telemetry
