/**
 * @file
 * JsonWriter: a minimal streaming JSON builder.
 *
 * The CLI and report emitters previously hand-rolled JSON with printf,
 * which is how the TraceWriter escaping bug slipped in. This writer
 * centralizes comma placement, string escaping (via jsonEscape) and
 * number formatting: doubles print with %.17g so values round-trip
 * exactly, and non-finite values serialize as null (valid JSON, and a
 * visible oddity rather than a parse failure).
 *
 * Usage is push-style with no validation beyond balanced begin/end
 * (asserted): callers are expected to produce well-formed sequences,
 * and the CI smoke steps parse every emitted file with json.tool.
 */

#ifndef THEMIS_STATS_TELEMETRY_JSON_WRITER_HPP
#define THEMIS_STATS_TELEMETRY_JSON_WRITER_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace themis::stats::telemetry {

class JsonWriter
{
public:
    JsonWriter& beginObject();
    JsonWriter& endObject();
    JsonWriter& beginArray();
    JsonWriter& endArray();

    /** Object key; must be followed by a value or container. */
    JsonWriter& key(const std::string& k);

    JsonWriter& value(const std::string& v);
    JsonWriter& value(const char* v);
    JsonWriter& value(double v);
    JsonWriter& value(std::uint64_t v);
    JsonWriter& value(int v);
    JsonWriter& value(bool v);

    /** Splice pre-rendered JSON in value position, verbatim. */
    JsonWriter& raw(const std::string& json);

    /** Finished document; asserts every container was closed. */
    std::string str() const;

private:
    void beforeValue();

    std::string out_;
    /** One flag per open container: true once it holds an element. */
    std::vector<bool> has_elem_;
    bool pending_key_ = false;
};

} // namespace themis::stats::telemetry

#endif // THEMIS_STATS_TELEMETRY_JSON_WRITER_HPP
