/**
 * @file
 * Telemetry: the bundle a run threads through RuntimeConfig.
 *
 * One instance per simulation thread groups the three observability
 * surfaces -- the metrics registry, the flight recorder, and an
 * optional TraceWriter -- plus the absolute-time base that stitches
 * iteration epochs (whose event-queue clocks rebase to zero) and
 * replayed convergence rounds into one continuous run timeline.
 *
 * Publishers (CommRuntime, FaultDriver, Cluster, the CLI loops) hold a
 * `Telemetry*`; a null pointer means instrumentation is off and every
 * publish site reduces to one branch. Everything here is observational
 * only: no publisher may feed simulation state or epoch fingerprints,
 * which is what keeps telemetry-on runs bit-identical to telemetry-off
 * runs (asserted by telemetry_test and bench/telemetry_overhead.cpp).
 */

#ifndef THEMIS_STATS_TELEMETRY_TELEMETRY_HPP
#define THEMIS_STATS_TELEMETRY_TELEMETRY_HPP

#include "common/units.hpp"
#include "stats/telemetry/flight_recorder.hpp"
#include "stats/telemetry/metrics.hpp"

namespace themis::stats {
class TraceWriter;
} // namespace themis::stats

namespace themis::stats::telemetry {

struct Telemetry
{
    MetricsRegistry metrics;
    FlightRecorder recorder;

    /** Optional trace sink; not owned. */
    TraceWriter* trace = nullptr;

    /**
     * Absolute run time already folded out of the event queue by epoch
     * rebases and replay skips; absolute now = time_base + queue.now().
     */
    TimeNs time_base = 0.0;

    TimeNs absolute(TimeNs queue_now) const
    {
        return time_base + queue_now;
    }
};

} // namespace themis::stats::telemetry

#endif // THEMIS_STATS_TELEMETRY_TELEMETRY_HPP
