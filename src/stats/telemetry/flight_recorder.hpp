/**
 * @file
 * FlightRecorder: a bounded ring of recent scheduling / fault events.
 *
 * The runtime appends a tiny POD record at every interesting edge
 * (collective issue/finish, fault application, retry, re-plan, fatal
 * exhaustion, deadline miss, epoch close, replay skip). The ring keeps
 * only the most recent entries, so cost is O(1) per event and bounded
 * memory regardless of run length. The content is dumped into the
 * RunReport and onto stderr when a run dies with RetryExhaustedError,
 * giving postmortems the "what happened just before" context that a
 * final summary table cannot.
 *
 * Timestamps are absolute run time: the publisher folds the iteration
 * epoch base in, so a multi-epoch convergence run reads as one
 * timeline. Like the rest of telemetry, the recorder is a pure
 * observer and is not thread-safe.
 */

#ifndef THEMIS_STATS_TELEMETRY_FLIGHT_RECORDER_HPP
#define THEMIS_STATS_TELEMETRY_FLIGHT_RECORDER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace themis::stats::telemetry {

/** What kind of edge a flight-recorder entry marks. */
enum class FlightKind : std::uint8_t
{
    CollectiveIssued,
    CollectiveDone,
    FaultEvent,
    Retry,
    FatalRetry,
    Replan,
    DeadlineMiss,
    EpochClosed,
    ReplaySkip,
};

const char* flightKindName(FlightKind kind);

/** One recorded edge; `dim`/`aux`/`value` are kind-specific. */
struct FlightEvent
{
    /** Absolute run time (epoch base folded in). */
    TimeNs at = 0.0;
    FlightKind kind = FlightKind::CollectiveIssued;
    /** Dimension / collective id / job id, per kind; -1 when n/a. */
    int dim = -1;
    /** Secondary id (attempt, fault kind, replan #); -1 when n/a. */
    int aux = -1;
    /** Bytes / duration / factor, per kind; 0 when n/a. */
    double value = 0.0;
};

/** One human-readable line for @p e (postmortem dumps). */
std::string describeFlightEvent(const FlightEvent& e);

class FlightRecorder
{
public:
    static constexpr std::size_t kDefaultCapacity = 256;

    explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

    void record(const FlightEvent& e);

    /** Entries currently held (<= capacity()). */
    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }
    /** Total record() calls over the recorder's life. */
    std::uint64_t totalRecorded() const { return total_; }
    /** Entries evicted by the ring bound. */
    std::uint64_t dropped() const
    {
        return total_ - static_cast<std::uint64_t>(size());
    }

    /** Held entries, oldest first. */
    std::vector<FlightEvent> events() const;

    void clear();

private:
    std::vector<FlightEvent> ring_;
    std::size_t capacity_;
    std::size_t next_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace themis::stats::telemetry

#endif // THEMIS_STATS_TELEMETRY_FLIGHT_RECORDER_HPP
