#include "stats/csv_writer.hpp"

#include "common/error.hpp"

namespace themis::stats {

namespace {

std::string
escape(const std::string& cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += "\"";
    return out;
}

} // namespace

CsvWriter::CsvWriter(const std::string& path)
    : out_(path)
{
    if (!out_)
        THEMIS_FATAL("cannot open CSV output file '" << path << "'");
}

void
CsvWriter::writeRow(const std::vector<std::string>& cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0)
            out_ << ",";
        out_ << escape(cells[i]);
    }
    out_ << "\n";
}

void
CsvWriter::close()
{
    if (out_.is_open())
        out_.close();
}

CsvWriter::~CsvWriter()
{
    close();
}

} // namespace themis::stats
