#!/usr/bin/env python3
"""Per-PR bench trend gate.

Diffs the freshly produced bench_results/BENCH_*.json against the
previous CI run's uploaded artifacts and fails (exit 1) when a tracked
throughput metric regressed by more than the allowed fraction.

Tracked metrics (higher is better):
  BENCH_core.json  -> events_per_sec of the "gps" channel rows and the
                      event_queue row (keyed by impl/transfers)
  BENCH_e2e.json   -> cells_per_sec of the "optimized" mode (the
                      "baseline" mode measures deliberately disabled
                      optimizations, so it is reported but not gated)
  BENCH_priority.json -> reported only (simulated-time study; its own
                      binary asserts the semantic invariants)

Wall-clock noise on shared CI runners is real, so the default budget
is generous (15%); the gate exists to catch order-of-magnitude
regressions like an accidentally disabled cache, not 2% wiggle.

Usage:
  bench_trend.py --prev DIR --curr DIR [--max-regression 0.15]

Missing files (first run, renamed artifacts) are reported and
skipped — the gate only compares metrics present on both sides.
"""

import argparse
import json
import os
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        return None
    except json.JSONDecodeError as e:
        print(f"note: {path} is not valid JSON ({e}); skipping")
        return None


def core_metrics(doc):
    """{label: events_per_sec} for the fast-path rows of BENCH_core."""
    out = {}
    for row in doc.get("channel", []):
        if row.get("impl") == "gps":
            key = f"channel/gps/{row.get('transfers')}"
            out[key] = row.get("events_per_sec")
    for row in doc.get("event_queue", []):
        key = f"event_queue/{row.get('transfers')}"
        out[key] = row.get("events_per_sec")
    return {k: v for k, v in out.items() if isinstance(v, (int, float))}


def e2e_metrics(doc):
    """{label: cells_per_sec} for the optimized mode of BENCH_e2e."""
    out = {}
    for mode in doc.get("modes", []):
        if mode.get("mode") == "optimized":
            out["e2e/optimized"] = mode.get("cells_per_sec")
    return {k: v for k, v in out.items() if isinstance(v, (int, float))}


def compare(name, prev_doc, curr_doc, extract, budget):
    if curr_doc is None:
        print(f"{name}: no current result; skipping")
        return []
    if prev_doc is None:
        print(f"{name}: no previous artifact (first run?); skipping")
        return []
    prev, curr = extract(prev_doc), extract(curr_doc)
    regressions = []
    for key in sorted(prev.keys() & curr.keys()):
        p, c = prev[key], curr[key]
        if p <= 0:
            continue
        delta = (c - p) / p
        marker = "ok"
        if delta < -budget:
            marker = "REGRESSION"
            regressions.append((key, p, c, delta))
        print(f"{name} {key}: {p:.1f} -> {c:.1f} "
              f"({delta:+.1%}) {marker}")
    for key in sorted(prev.keys() - curr.keys()):
        print(f"{name} {key}: present previously, missing now")
    return regressions


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--prev", required=True,
                    help="directory with the previous run's JSONs")
    ap.add_argument("--curr", required=True,
                    help="directory with this run's JSONs")
    ap.add_argument("--max-regression", type=float, default=0.15,
                    help="allowed fractional slowdown (default 0.15)")
    args = ap.parse_args()

    regressions = []
    regressions += compare(
        "BENCH_core",
        load(os.path.join(args.prev, "BENCH_core.json")),
        load(os.path.join(args.curr, "BENCH_core.json")),
        core_metrics, args.max_regression)
    regressions += compare(
        "BENCH_e2e",
        load(os.path.join(args.prev, "BENCH_e2e.json")),
        load(os.path.join(args.curr, "BENCH_e2e.json")),
        e2e_metrics, args.max_regression)

    prio = load(os.path.join(args.curr, "BENCH_priority.json"))
    if prio is not None:
        print(f"BENCH_priority: urgent-tenant max gain "
              f"{prio.get('hi_priority_max_gain', '?')}x, "
              f"bytes_conserved={prio.get('bytes_conserved', '?')} "
              f"(informational)")

    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed beyond "
              f"{args.max_regression:.0%}:")
        for key, p, c, delta in regressions:
            print(f"  {key}: {p:.1f} -> {c:.1f} ({delta:+.1%})")
        return 1
    print("\nbench trend gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
