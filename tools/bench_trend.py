#!/usr/bin/env python3
"""Per-PR bench trend gate and cross-PR history table.

Diffs the freshly produced bench_results/BENCH_*.json against the
previous CI run's uploaded artifacts and fails (exit 1) when a tracked
throughput metric regressed by more than the allowed fraction.

Tracked metrics (higher is better):
  BENCH_core.json  -> events_per_sec of the "gps" channel rows and the
                      event_queue row (keyed by impl/transfers)
  BENCH_e2e.json   -> cells_per_sec of the "optimized" mode (the
                      "baseline" mode measures deliberately disabled
                      optimizations, so it is reported but not gated)
  BENCH_convergence.json -> cells_per_sec of the 20-iteration fig12
                      convergence grid (the replay speedup — a ratio
                      of two wall clocks — is historized and printed
                      but too noisy to gate)
  BENCH_priority.json -> reported only (simulated-time study; its own
                      binary asserts the semantic invariants)
  BENCH_cluster.json -> cells_per_sec of the multi-job contention
                      grid; the deadline hit rates and offset-search
                      gain are historized/reported but not gated
                      (simulated-time metrics asserted in-binary).
                      The period-k cycle-replay speedup is historized
                      AND gated against its absolute floor (>=5x, the
                      same floor the bench asserts in-binary) rather
                      than against the previous run — a ratio of two
                      wall clocks is too noisy for a 15% delta gate,
                      but an order-of-magnitude collapse below the
                      floor must fail CI even if the bench binary's
                      own assert was skipped
  BENCH_sweep_service.json -> cells_per_sec of the 1-process sharded
                      sweep grid; the 2-shard scaling ratio and the
                      memoized warm-query speedup are ratios of small
                      wall clocks — asserted in-binary against their
                      floors (>=1.7x and >=10x) and historized here,
                      but not gated
  BENCH_fault.json -> events_per_sec of the fault-resilience scenario
                      grid; conservation and bit-identical replay
                      invariants are asserted in-binary and reported
                      here informationally
  BENCH_adaptation.json -> events_per_sec of the adaptive re-planning
                      scenario grid; the adaptive-vs-static win and
                      fault-free bit-identity are asserted in-binary
                      against their floors and historized here
  BENCH_telemetry.json -> events_per_sec of the bare (telemetry-off)
                      cells; the armed/bare overhead ratio is a ratio
                      of two wall clocks asserted in-binary against
                      its floor (>=0.90, i.e. <=10% overhead) and
                      historized here so instrumentation creep across
                      PRs stays visible, but not diff-gated

Beyond the previous-run diff, the script maintains a per-PR history
table: bench_results/history.csv (long format: run,metric,value). The
previous run's history is carried forward from the --prev artifact,
this run's metrics are appended, and the last few runs are printed as
a pivoted table so drift across PRs — not just vs the immediately
preceding run — is visible in CI logs.

Wall-clock noise on shared CI runners is real, so the default budget
is generous (15%); the gate exists to catch order-of-magnitude
regressions like an accidentally disabled cache, not 2% wiggle.

Usage:
  bench_trend.py --prev DIR --curr DIR [--max-regression 0.15]
                 [--run-label LABEL]

Missing files (first run, renamed artifacts) are reported and
skipped — the gate only compares metrics present on both sides; the
history starts fresh when no previous table exists.
"""

import argparse
import csv
import json
import os
import sys

HISTORY_FILE = "history.csv"
HISTORY_MAX_RUNS = 50
HISTORY_TABLE_RUNS = 8


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except FileNotFoundError:
        return None
    except OSError as e:
        print(f"note: cannot read {path} ({e}); skipping")
        return None
    except json.JSONDecodeError as e:
        print(f"note: {path} is not valid JSON ({e}); skipping")
        return None
    if not isinstance(doc, dict):
        print(f"note: {path} is not a JSON object "
              f"(got {type(doc).__name__}); skipping")
        return None
    return doc


def core_metrics(doc):
    """{label: events_per_sec} for the fast-path rows of BENCH_core."""
    out = {}
    for row in doc.get("channel", []):
        if row.get("impl") == "gps":
            key = f"channel/gps/{row.get('transfers')}"
            out[key] = row.get("events_per_sec")
    for row in doc.get("event_queue", []):
        key = f"event_queue/{row.get('transfers')}"
        out[key] = row.get("events_per_sec")
    return {k: v for k, v in out.items() if isinstance(v, (int, float))}


def e2e_metrics(doc):
    """{label: cells_per_sec} for the optimized mode of BENCH_e2e."""
    out = {}
    for mode in doc.get("modes", []):
        if mode.get("mode") == "optimized":
            out["e2e/optimized"] = mode.get("cells_per_sec")
    return {k: v for k, v in out.items() if isinstance(v, (int, float))}


def convergence_metrics(doc):
    """Convergence-grid throughput (absolute, like the other gated
    metrics). The replay *speedup* is a ratio of two wall clocks with
    a tens-of-ms denominator — far too noisy for a 15% gate — so it is
    reported and historized but never gated."""
    out = {}
    grid = doc.get("grid", {})
    out["convergence/grid_cells_per_sec"] = grid.get("cells_per_sec")
    return {k: v for k, v in out.items() if isinstance(v, (int, float))}


def convergence_info_metrics(doc):
    """History-only convergence metrics (see convergence_metrics)."""
    out = {}
    t1t = doc.get("transformer_1t", {})
    out["convergence/replay_speedup"] = t1t.get("speedup")
    return {k: v for k, v in out.items() if isinstance(v, (int, float))}


def cluster_metrics(doc):
    """{label: cells_per_sec} of the multi-job contention grid."""
    out = {"cluster/cells_per_sec": doc.get("cells_per_sec")}
    return {k: v for k, v in out.items() if isinstance(v, (int, float))}


def cluster_info_metrics(doc):
    """History-only cluster metrics: simulated-time outcomes whose
    invariants (improvement, conservation) the bench asserts
    in-binary; historized so drift across PRs stays visible."""
    out = {}
    deadline = doc.get("deadline", {})
    out["cluster/deadline_hit_rate_tiered"] = deadline.get(
        "tiered_hit_rate")
    offset = doc.get("offset_search", {})
    out["cluster/offset_search_gain"] = offset.get("gain")
    cycle = doc.get("cycle_replay", {})
    out["cluster/replay_speedup"] = cycle.get("speedup")
    out["cluster/replay_rounds"] = cycle.get("rounds_replayed")
    return {k: v for k, v in out.items() if isinstance(v, (int, float))}


# Absolute floor for the cycle-replay speedup (mirrors the in-binary
# assert in bench/multi_job_contention.cpp; see module docstring).
CYCLE_REPLAY_SPEEDUP_FLOOR = 5.0


def cluster_cycle_gate(doc):
    """[(key, value, floor)] floor violations of the cycle-replay
    experiment, or [] when absent (older artifacts) or healthy."""
    if doc is None:
        return []
    cycle = doc.get("cycle_replay")
    if not isinstance(cycle, dict):
        return []
    failures = []
    speedup = cycle.get("speedup")
    if isinstance(speedup, (int, float)) and \
            speedup < CYCLE_REPLAY_SPEEDUP_FLOOR:
        failures.append(("cluster/replay_speedup", speedup,
                         CYCLE_REPLAY_SPEEDUP_FLOOR))
    if cycle.get("bit_identical") is False:
        failures.append(("cluster/replay_bit_identical", 0.0, 1.0))
    return failures


def sweep_metrics(doc):
    """{label: cells_per_sec} of the sharded sweep-service grid."""
    out = {"sweep_service/cells_per_sec": doc.get("cells_per_sec")}
    return {k: v for k, v in out.items() if isinstance(v, (int, float))}


def fault_metrics(doc):
    """{label: events_per_sec} of the fault-resilience grid."""
    out = {"fault/events_per_sec": doc.get("events_per_sec")}
    return {k: v for k, v in out.items() if isinstance(v, (int, float))}


def adaptation_metrics(doc):
    """{label: events_per_sec} of the adaptive scenario grid. The
    adaptive-vs-static win is a ratio of simulated makespans asserted
    against its floor in-binary; historized, not gated."""
    out = {"adaptation/events_per_sec": doc.get("events_per_sec")}
    return {k: v for k, v in out.items() if isinstance(v, (int, float))}


def adaptation_info_metrics(doc):
    """History-only adaptation metrics (see adaptation_metrics)."""
    out = {"adaptation/win": doc.get("win")}
    return {k: v for k, v in out.items() if isinstance(v, (int, float))}


def telemetry_metrics(doc):
    """{label: events_per_sec} of the telemetry-off (bare) cells of
    the overhead bench — the same simulator fast path the other
    benches gate, so it diffs like any throughput metric."""
    out = {"telemetry/events_per_sec_bare": doc.get(
        "events_per_sec_bare")}
    return {k: v for k, v in out.items() if isinstance(v, (int, float))}


def telemetry_info_metrics(doc):
    """History-only telemetry metrics: the armed/bare overhead ratio
    is a ratio of two wall clocks asserted in-binary against its
    floor; historized so instrumentation creep stays visible."""
    out = {"telemetry/overhead_ratio": doc.get("overhead_ratio")}
    return {k: v for k, v in out.items() if isinstance(v, (int, float))}


def sweep_info_metrics(doc):
    """History-only sweep-service metrics: both are ratios of small
    wall clocks (shard scaling, warm-query speedup) whose floors the
    bench asserts in-binary; historized so drift stays visible."""
    out = {}
    out["sweep_service/shard_scaling"] = doc.get("shard_scaling")
    query = doc.get("query", {})
    out["sweep_service/warm_speedup"] = query.get("warm_speedup")
    return {k: v for k, v in out.items() if isinstance(v, (int, float))}


# Single source of truth for what the gate diffs AND what the history
# table records — add new BENCH files here and both stay in sync.
TRACKED = (
    ("BENCH_core.json", core_metrics),
    ("BENCH_e2e.json", e2e_metrics),
    ("BENCH_convergence.json", convergence_metrics),
    ("BENCH_cluster.json", cluster_metrics),
    ("BENCH_sweep_service.json", sweep_metrics),
    ("BENCH_fault.json", fault_metrics),
    ("BENCH_adaptation.json", adaptation_metrics),
    ("BENCH_telemetry.json", telemetry_metrics),
)

# Historized but never gated (too noisy or purely informational).
TRACKED_INFO = (
    ("BENCH_convergence.json", convergence_info_metrics),
    ("BENCH_cluster.json", cluster_info_metrics),
    ("BENCH_sweep_service.json", sweep_info_metrics),
    ("BENCH_adaptation.json", adaptation_info_metrics),
    ("BENCH_telemetry.json", telemetry_info_metrics),
)


def compare(name, prev_doc, curr_doc, extract, budget):
    if curr_doc is None:
        print(f"{name}: no current result; skipping")
        return []
    if prev_doc is None:
        print(f"{name}: no previous artifact (first run?); skipping")
        return []
    prev, curr = extract(prev_doc), extract(curr_doc)
    regressions = []
    for key in sorted(prev.keys() & curr.keys()):
        p, c = prev[key], curr[key]
        if p <= 0:
            continue
        delta = (c - p) / p
        marker = "ok"
        if delta < -budget:
            marker = "REGRESSION"
            regressions.append((key, p, c, delta))
        print(f"{name} {key}: {p:.1f} -> {c:.1f} "
              f"({delta:+.1%}) {marker}")
    for key in sorted(prev.keys() - curr.keys()):
        print(f"{name} {key}: present previously, missing now")
    return regressions


def current_metrics(curr_dir):
    """Every tracked metric of this run, flattened to {name: value}."""
    out = {}
    for fname, extract in TRACKED + TRACKED_INFO:
        doc = load(os.path.join(curr_dir, fname))
        if doc is not None:
            out.update(extract(doc))
    return out


def load_history(path):
    """[(run, metric, value)] rows of an existing history table."""
    rows = []
    try:
        with open(path, newline="") as f:
            for rec in csv.DictReader(f):
                try:
                    rows.append((rec["run"], rec["metric"],
                                 float(rec["value"])))
                except (KeyError, TypeError, ValueError):
                    continue
    except FileNotFoundError:
        pass
    return rows


def update_history(prev_dir, curr_dir, run_label, metrics):
    """Carry the history forward, append this run, print the table."""
    if not os.path.isdir(curr_dir):
        print(f"note: {curr_dir} does not exist; skipping history")
        return
    rows = load_history(os.path.join(prev_dir, HISTORY_FILE))
    # Re-runs with the same label (e.g. a rebased PR) replace their
    # previous entries instead of duplicating the run column.
    rows = [r for r in rows if r[0] != run_label]
    rows += [(run_label, metric, value)
             for metric, value in sorted(metrics.items())]

    run_order = []
    for run, _, _ in rows:
        if run not in run_order:
            run_order.append(run)
    if len(run_order) > HISTORY_MAX_RUNS:
        keep = set(run_order[-HISTORY_MAX_RUNS:])
        rows = [r for r in rows if r[0] in keep]
        run_order = run_order[-HISTORY_MAX_RUNS:]

    out_path = os.path.join(curr_dir, HISTORY_FILE)
    with open(out_path, "w", newline="") as f:
        w = csv.writer(f)
        w.writerow(["run", "metric", "value"])
        w.writerows(rows)

    shown = run_order[-HISTORY_TABLE_RUNS:]
    values = {(run, metric): value for run, metric, value in rows}
    metrics_seen = sorted({m for _, m, _ in rows})
    print(f"\nbench history ({len(run_order)} run(s) tracked, "
          f"showing last {len(shown)}) -> {out_path}")
    width = max((len(m) for m in metrics_seen), default=6)
    header = "metric".ljust(width) + "".join(
        f"  {run:>12.12}" for run in shown)
    print(header)
    print("-" * len(header))
    for metric in metrics_seen:
        cells = []
        for run in shown:
            v = values.get((run, metric))
            cells.append(f"  {v:>12.1f}" if v is not None
                         else f"  {'-':>12}")
        print(metric.ljust(width) + "".join(cells))


def default_run_label():
    for env in ("GITHUB_RUN_NUMBER", "GITHUB_SHA"):
        v = os.environ.get(env)
        if v:
            return f"run-{v[:10]}" if env == "GITHUB_SHA" else f"run-{v}"
    return "local"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--prev", required=True,
                    help="directory with the previous run's JSONs")
    ap.add_argument("--curr", required=True,
                    help="directory with this run's JSONs")
    ap.add_argument("--max-regression", type=float, default=0.15,
                    help="allowed fractional slowdown (default 0.15)")
    ap.add_argument("--run-label", default=None,
                    help="history row label (default: CI run number, "
                         "short SHA, or 'local')")
    args = ap.parse_args()

    regressions = []
    for fname, extract in TRACKED:
        regressions += compare(
            fname.removesuffix(".json"),
            load(os.path.join(args.prev, fname)),
            load(os.path.join(args.curr, fname)),
            extract, args.max_regression)

    prio = load(os.path.join(args.curr, "BENCH_priority.json"))
    if prio is not None:
        print(f"BENCH_priority: urgent-tenant max gain "
              f"{prio.get('hi_priority_max_gain', '?')}x, "
              f"bytes_conserved={prio.get('bytes_conserved', '?')} "
              f"(informational)")
    clus = load(os.path.join(args.curr, "BENCH_cluster.json"))
    floor_failures = cluster_cycle_gate(clus)
    if clus is not None:
        deadline = clus.get("deadline", {})
        offset = clus.get("offset_search", {})
        cycle = clus.get("cycle_replay", {})
        print(f"BENCH_cluster: per-job bytes conserved="
              f"{clus.get('conservation', {}).get('bytes_conserved_per_job', '?')}, "
              f"deadline hit rate "
              f"{deadline.get('uniform_hit_rate', '?')} -> "
              f"{deadline.get('tiered_hit_rate', '?')}, "
              f"offset-search gain {offset.get('gain', '?')}x "
              f"(informational)")
        if cycle:
            print(f"BENCH_cluster cycle replay: "
                  f"{cycle.get('rounds_simulated', '?')} simulated + "
                  f"{cycle.get('rounds_replayed', '?')} replayed of "
                  f"{cycle.get('rounds', '?')} rounds (cycle "
                  f"{cycle.get('cycle_length', '?')}), speedup "
                  f"{cycle.get('speedup', '?')}x "
                  f"(floor {CYCLE_REPLAY_SPEEDUP_FLOOR}x, gated), "
                  f"bit_identical={cycle.get('bit_identical', '?')}")
    sweep = load(os.path.join(args.curr, "BENCH_sweep_service.json"))
    if sweep is not None:
        query = sweep.get("query", {})
        print(f"BENCH_sweep_service: 2-shard scaling "
              f"{sweep.get('shard_scaling', '?')}x, "
              f"merge_bit_identical="
              f"{sweep.get('merge_bit_identical', '?')}, "
              f"resume_bit_identical="
              f"{sweep.get('resume_bit_identical', '?')}, "
              f"warm-query speedup {query.get('warm_speedup', '?')}x "
              f"(floors asserted in-binary)")
    fault = load(os.path.join(args.curr, "BENCH_fault.json"))
    if fault is not None:
        print(f"BENCH_fault: bytes_conserved="
              f"{fault.get('bytes_conserved', '?')}, "
              f"replay_bit_identical="
              f"{fault.get('replay_bit_identical', '?')}, "
              f"faultfree_bit_identical="
              f"{fault.get('faultfree_bit_identical', '?')} "
              f"(asserted in-binary)")
    adapt = load(os.path.join(args.curr, "BENCH_adaptation.json"))
    if adapt is not None:
        print(f"BENCH_adaptation: adaptive win "
              f"{adapt.get('win', '?')}x over the stale static plan "
              f"(floor {adapt.get('adaptive_win_floor', '?')}x), "
              f"faultfree_bit_identical="
              f"{adapt.get('faultfree_bit_identical', '?')}, "
              f"bytes_conserved="
              f"{adapt.get('bytes_conserved', '?')} "
              f"(asserted in-binary)")
    telem = load(os.path.join(args.curr, "BENCH_telemetry.json"))
    if telem is not None:
        print(f"BENCH_telemetry: overhead ratio "
              f"{telem.get('overhead_ratio', '?')} "
              f"(floor {telem.get('overhead_floor', '?')}), "
              f"bit_identical={telem.get('bit_identical', '?')} "
              f"(asserted in-binary)")
    conv = load(os.path.join(args.curr, "BENCH_convergence.json"))
    if conv is not None:
        exact = conv.get("exactness", {})
        print(f"BENCH_convergence: exactness passed="
              f"{exact.get('passed', '?')} "
              f"(steady at {exact.get('steady_at', '?')}), "
              f"replay speedup "
              f"{conv.get('transformer_1t', {}).get('speedup', '?')}x")

    update_history(args.prev, args.curr,
                   args.run_label or default_run_label(),
                   current_metrics(args.curr))

    if floor_failures:
        print(f"\n{len(floor_failures)} metric(s) under their "
              f"absolute floor:")
        for key, value, floor in floor_failures:
            print(f"  {key}: {value:.2f} < floor {floor:.2f}")
    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed beyond "
              f"{args.max_regression:.0%}:")
        for key, p, c, delta in regressions:
            print(f"  {key}: {p:.1f} -> {c:.1f} ({delta:+.1%})")
    if regressions or floor_failures:
        return 1
    print("\nbench trend gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
