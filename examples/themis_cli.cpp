/**
 * @file
 * Command-line collective simulator: the whole library behind one
 * flag-driven binary, for quick what-if studies on custom platforms.
 *
 * Usage:
 *   themis_cli [options]
 *     --topo NAME|SPEC    Table 2 preset name, or a spec like
 *                         "SW:16:200x6:700,SW:64:800:1700"
 *                         (see topology/parse.hpp)   [3D-SW_SW_SW_homo]
 *     --type ar|rs|ag|a2a collective pattern          [ar]
 *     --size BYTES        per-NPU collective size     [1e9]
 *     --chunks N          chunks per collective       [64]
 *     --sched base|fifo|scf                           [scf]
 *     --enforce           pre-simulate & enforce chunk-op orders
 *     --sweep C1,C2,...   sweep those chunk counts across all three
 *                         schedulers in parallel (worker threads)
 *     --grid T1;T2;...    sweep a semicolon-separated topology list
 *                         (preset names and/or specs) across all
 *                         three schedulers — and across the --sweep
 *                         chunk counts when given — sharing one plan
 *                         cache across the grid's workers; malformed
 *                         entries are rejected with an entry/column
 *                         diagnostic. Cluster mixes (--jobs with
 *                         '|'-separated spec lists) add a jobs axis:
 *                         each cell co-simulates one mix instead of
 *                         one collective
 *     --shard I/N         own only the grid cells whose canonical
 *                         index is congruent to I mod N; run the N
 *                         shards in independent processes and --merge
 *                         their stores back bit-identically
 *     --results PATH      append-only JSONL results store: every
 *                         completed cell streams one record (key,
 *                         values, fingerprint, wall time); on restart
 *                         recorded cells are skipped (crash-safe
 *                         resume, truncated tails dropped)
 *     --max-cells N       stop after simulating N new cells (resume
 *                         testing: interrupt a run deterministically)
 *     --merge OUT,IN...   write the canonical merge of the IN result
 *                         stores to OUT and exit; shards of one grid
 *                         merge byte-equal to the 1-process store
 *     --serve             memoized what-if query loop: read queries
 *                         from stdin (whitespace-separated key=value,
 *                         blank line flushes a batch), simulate
 *                         misses through the warm shared plan cache,
 *                         answer repeats from --results / the session
 *                         without re-simulating, report hit/miss and
 *                         latency stats at EOF. Query keys: topo=
 *                         (required), sched=base|fifo|scf,
 *                         chunks=N, type=ar|rs|ag|a2a, size=BYTES,
 *                         or model=NAME [iters=N] for a convergence
 *                         replay of a training workload
 *     --priority W        two-tenant priority demo on --topo: an
 *                         urgent All-Reduce chain (weight W) vs bulk
 *                         All-Reduces (weight 1) under the
 *                         priority-aware Themis scheduler, with
 *                         per-class utilization and slowdown columns
 *                         (W = 1 is the egalitarian baseline)
 *     --iterations N      multi-iteration convergence run of --model
 *                         on --topo through the steady-state replay
 *                         engine (identical iterations are detected
 *                         by fingerprint and integrated forward
 *                         analytically instead of re-simulated)
 *     --model NAME        model-zoo workload for --iterations
 *                         [Transformer-1T]
 *     --exact             exactness-check mode: co-run the full
 *                         simulation and assert the replay's
 *                         prediction bit-identical
 *     --no-replay         simulate every iteration (measurement
 *                         baseline; results identical)
 *     --cycle-limit K     largest steady-cycle length (in lockstep
 *                         rounds) the period-k detector may confirm
 *                         (>= 1; default: the job mix's stepping
 *                         hyper-period). With --jobs it also selects
 *                         the lockstep convergence path. Rejected in
 *                         modes that never replay
 *                         (--grid/--sweep/--serve/--priority)
 *     --jobs N|SPECS      N (integer): sweep worker threads
 *                         [hardware concurrency]. Otherwise a
 *                         semicolon-separated multi-job cluster spec
 *                         co-simulated on --topo's shared fabric:
 *                           train:MODEL[,key=val...]
 *                           infer:SIZE[,key=val...]
 *                         keys: arrival=NS, tier=bulk|standard|urgent,
 *                         iterations=N (train; default --iterations
 *                         or 3), period=NS, deadline=NS, requests=N
 *                         (infer; 0 = until training drains).
 *                         Respects --sched/--chunks/--enforce;
 *                         --size/--type are inert (sizes come from
 *                         the specs). Free-running by default; with
 *                         --exact/--no-replay/--cycle-limit the mix
 *                         runs in lockstep rounds through the
 *                         period-k convergence replay engine
 *                         (periodic tenants step every cadence-th
 *                         round, cadence = period / gcd of periods;
 *                         requires open-ended streams, arrival 0 and
 *                         a hyper-period within the cycle limit).
 *                         Incompatible with --sweep/--grid/--priority.
 *     --faults SPEC       fault/heterogeneity timeline applied to the
 *                         single-collective, --iterations and --jobs
 *                         runs (see sim/fault_timeline.hpp):
 *                         ';'-separated events of the form
 *                           degrade@T+D:dim=K,factor=F
 *                           straggler@T:dim=K,factor=F
 *                           flap@T+D:dim=K
 *                           link@T+D:dim=K,index=I
 *                           storm@T+D:dim=K,flaps=N,down=NS[,seed=S]
 *                         A per-dimension fault report (capacity
 *                         steps, flaps, down time, retries, re-sent
 *                         bytes, fatal retry failures) prints after
 *                         the run
 *     --adapt             fault-aware adaptive re-planning: every
 *                         capacity-changing fault event (degrade
 *                         edge, straggler, per-link outage) makes
 *                         newly issued collectives re-plan against
 *                         the degraded per-dim bandwidths; in-flight
 *                         collectives finish under their old plan.
 *                         With no faults the results stay
 *                         bit-identical to the static engine
 *     --replan-threshold T  minimum relative per-dim capacity change
 *                         that triggers a re-plan (hysteresis)
 *                         [0.05]
 *     --tier-ratio W      cluster runs: weight ladder of the priority
 *                         policy (tiered(W); 1 separates classes at
 *                         unit weights) [4]
 *     --offset-search     cluster runs: CASSINI-style phase-offset
 *                         search — shift job start times by fractions
 *                         of an iteration to interleave communication
 *                         bursts; reports every candidate and runs
 *                         the best
 *
 * Example:
 *   themis_cli --topo "Ring:4:1000x2:20,SW:8:400:1700" --size 2.5e8
 *   themis_cli --sweep 4,16,64,256 --jobs 8
 *   themis_cli --grid "2D-SW_SW;3D-SW_SW_SW_homo" --size 1e9
 *   themis_cli --priority 4 --size 5e8
 *   themis_cli --iterations 100 --model GNMT --topo 2D-SW_SW
 *   themis_cli --jobs "train:DLRM;infer:3.2e7,period=2e5,deadline=3e5" \
 *              --iterations 3 --tier-ratio 8
 *   themis_cli --topo 2D-SW_SW --size 5e8 \
 *              --faults "degrade@2e5+4e5:dim=0,factor=0.5;flap@1e6+5e4:dim=1"
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "cluster/cluster.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "core/ideal_estimator.hpp"
#include "core/priority_policy.hpp"
#include "core/themis_scheduler.hpp"
#include "models/model_zoo.hpp"
#include "npu/npu_machine.hpp"
#include "runtime/comm_runtime.hpp"
#include "sim/fault_timeline.hpp"
#include "sim/grid_shard.hpp"
#include "sim/result_store.hpp"
#include "sim/sweep_runner.hpp"
#include "stats/summary.hpp"
#include "stats/telemetry/json_writer.hpp"
#include "stats/telemetry/run_report.hpp"
#include "stats/telemetry/telemetry.hpp"
#include "stats/trace_writer.hpp"
#include "topology/parse.hpp"
#include "topology/presets.hpp"
#include "topology/provisioning.hpp"
#include "workload/convergence.hpp"

using namespace themis;

namespace {

[[noreturn]] void
usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--topo NAME|SPEC] [--type ar|rs|ag|a2a] "
                 "[--size BYTES]\n"
                 "          [--chunks N] [--sched base|fifo|scf] "
                 "[--enforce]\n"
                 "          [--sweep C1,C2,...] [--grid T1;T2;...] "
                 "[--priority W] [--jobs N|SPECS]\n"
                 "          [--iterations N] [--model NAME] [--exact] "
                 "[--no-replay] [--cycle-limit K]\n"
                 "          [--tier-ratio W] [--offset-search] "
                 "[--faults SPEC]\n"
                 "          [--adapt] [--replan-threshold T]\n"
                 "          [--shard I/N] [--results PATH] "
                 "[--max-cells N]\n"
                 "          [--merge OUT,IN1,IN2,...] [--serve]\n"
                 "          [--report PATH] [--trace PATH]\n",
                 argv0);
    std::exit(2);
}

Topology
resolveTopology(const std::string& arg)
{
    // Preset names contain no ':'; specs always do.
    if (arg.find(':') == std::string::npos)
        return presets::byName(arg);
    return parseTopology("custom", arg);
}

/**
 * One --grid topology axis entry. The raw token travels with the
 * resolved topology because it is the canonical result-store key
 * field: custom specs all resolve to a Topology named "custom", so
 * keying on the resolved name would collide distinct platforms.
 */
struct GridTopo
{
    std::string token;
    Topology topo;
};

/**
 * Parse a --grid topology list, rejecting malformed entries with an
 * entry-number/column diagnostic instead of silently skipping them
 * (the list is a single argument, so "line" is always 1).
 */
std::vector<GridTopo>
parseGridList(const std::string& grid_arg)
{
    std::vector<GridTopo> out;
    std::size_t entry = 0;
    std::size_t pos = 0;
    while (pos <= grid_arg.size()) {
        std::size_t sep = grid_arg.find(';', pos);
        if (sep == std::string::npos)
            sep = grid_arg.size();
        const std::string tok = grid_arg.substr(pos, sep - pos);
        ++entry;
        const std::size_t column = pos + 1; // 1-based for humans
        if (tok.find_first_not_of(" \t") == std::string::npos)
            THEMIS_FATAL("--grid entry " << entry << " (line 1, column "
                                         << column
                                         << ") is empty; remove the "
                                            "stray ';' or name a "
                                            "topology");
        try {
            out.push_back({tok, resolveTopology(tok)});
        } catch (const ConfigError& e) {
            THEMIS_FATAL("--grid entry " << entry << " (line 1, column "
                                         << column << "): '" << tok
                                         << "' is not a preset or "
                                            "topology spec: "
                                         << e.what());
        }
        pos = sep + 1;
        if (sep == grid_arg.size())
            break;
    }
    return out;
}

/** True when @p s is a plain non-negative integer (thread count). */
bool
isInteger(const std::string& s)
{
    return !s.empty() &&
           s.find_first_not_of("0123456789") == std::string::npos;
}

/** Parse a tier name or digit; -1 on failure. */
int
parseTier(const std::string& v)
{
    const std::string t = toLower(v);
    if (t == "bulk" || t == "0")
        return static_cast<int>(PriorityTier::Bulk);
    if (t == "standard" || t == "1")
        return static_cast<int>(PriorityTier::Standard);
    if (t == "urgent" || t == "2")
        return static_cast<int>(PriorityTier::Urgent);
    return -1;
}

/**
 * Parse one --jobs cluster spec list; see the usage comment for the
 * grammar. Malformed entries are rejected with an entry/key
 * diagnostic rather than silently skipped.
 */
std::vector<cluster::JobSpec>
parseJobSpecs(const std::string& arg, int default_iterations)
{
    std::vector<cluster::JobSpec> specs;
    std::size_t entry = 0;
    for (const std::string& tok : split(arg, ';')) {
        ++entry;
        const std::vector<std::string> fields = split(tok, ',');
        if (fields.empty() || fields.front().empty())
            THEMIS_FATAL("--jobs entry " << entry << " is empty");
        const std::string& head = fields.front();
        const std::size_t colon = head.find(':');
        if (colon == std::string::npos)
            THEMIS_FATAL("--jobs entry " << entry << " ('" << head
                                         << "'): expected "
                                            "train:MODEL or "
                                            "infer:SIZE");
        const std::string kind = toLower(head.substr(0, colon));
        const std::string head_arg = head.substr(colon + 1);
        cluster::JobSpec spec;
        if (kind == "train") {
            spec = cluster::JobSpec::training(
                models::byName(head_arg), default_iterations);
        } else if (kind == "infer") {
            const Bytes size = std::atof(head_arg.c_str());
            if (size <= 0.0)
                THEMIS_FATAL("--jobs entry "
                             << entry << ": bad request size '"
                             << head_arg << "'");
            // Period defaults are overridden below; validate() then
            // enforces a positive period was supplied.
            spec = cluster::JobSpec::periodicInference(size, 0.0);
        } else {
            THEMIS_FATAL("--jobs entry " << entry << ": unknown job "
                                         "kind '"
                                         << kind
                                         << "' (train or infer)");
        }
        for (std::size_t f = 1; f < fields.size(); ++f) {
            const std::size_t eq = fields[f].find('=');
            if (eq == std::string::npos)
                THEMIS_FATAL("--jobs entry "
                             << entry << ": field '" << fields[f]
                             << "' is not key=value");
            const std::string key = toLower(fields[f].substr(0, eq));
            const std::string val = fields[f].substr(eq + 1);
            if (key == "arrival") {
                spec.arrival = std::atof(val.c_str());
            } else if (key == "tier") {
                spec.priority_tier = parseTier(val);
                if (spec.priority_tier < 0)
                    THEMIS_FATAL("--jobs entry "
                                 << entry << ": bad tier '" << val
                                 << "' (bulk|standard|urgent)");
            } else if (key == "iterations" &&
                       kind == "train") {
                spec.iterations = std::atoi(val.c_str());
            } else if (key == "period" && kind == "infer") {
                spec.period = std::atof(val.c_str());
            } else if (key == "deadline" && kind == "infer") {
                spec.deadline = std::atof(val.c_str());
            } else if (key == "requests" && kind == "infer") {
                spec.max_requests = std::atoi(val.c_str());
            } else {
                THEMIS_FATAL("--jobs entry "
                             << entry << ": unknown key '" << key
                             << "' for a " << kind << " job");
            }
        }
        if (spec.kind == cluster::JobKind::PeriodicInference &&
            spec.period <= 0.0)
            THEMIS_FATAL("--jobs entry "
                         << entry
                         << ": infer jobs need period=NS (> 0)");
        spec.validate();
        specs.push_back(std::move(spec));
    }
    if (specs.empty())
        THEMIS_FATAL("--jobs spec '" << arg << "' names no jobs");
    return specs;
}

/** One --jobs mix on the grid's jobs axis. */
struct JobsMix
{
    /** Raw mix token (hashed into the result-store key field). */
    std::string token;
    std::vector<cluster::JobSpec> specs;
};

/**
 * Parse a '|'-separated list of cluster mixes for the --grid jobs
 * axis; each mix is one parseJobSpecs() spec list, so malformed
 * entries get the same entry/key diagnostics, prefixed with the mix
 * number.
 */
std::vector<JobsMix>
parseJobsMixes(const std::string& arg, int default_iterations)
{
    std::vector<JobsMix> out;
    std::size_t mix = 0;
    for (const std::string& tok : split(arg, '|')) {
        ++mix;
        if (tok.find_first_not_of(" \t") == std::string::npos)
            THEMIS_FATAL("--jobs mix " << mix
                                       << " is empty; remove the "
                                          "stray '|' or name jobs");
        try {
            out.push_back(
                {tok, parseJobSpecs(tok, default_iterations)});
        } catch (const ConfigError& e) {
            THEMIS_FATAL("--jobs mix " << mix << ": " << e.what());
        }
    }
    return out;
}

/** FNV-1a over @p n bytes, continuing @p h. */
std::uint64_t
fnv1a(const void* data, std::size_t n,
      std::uint64_t h = 14695981039346656037ull)
{
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

/** 16-hex-digit rendering of @p h (result-key mix hashes). */
std::string
hex16(std::uint64_t h)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

/**
 * Exact double rendering for result-store key fields ("%.17g"
 * round-trips any IEEE double), so a --serve query key matches the
 * grid-written record byte-for-byte.
 */
std::string
keyDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Result fingerprint: FNV-1a over names and value bit patterns. */
std::uint64_t
valuesFingerprint(
    const std::vector<std::pair<std::string, double>>& values)
{
    std::uint64_t h = 14695981039346656037ull;
    for (const auto& [name, v] : values) {
        h = fnv1a(name.data(), name.size(), h);
        h = fnv1a(&v, sizeof(v), h);
    }
    return h;
}

/** One evaluated grid cell / --serve query: values + wall time. */
struct CellOutcome
{
    std::vector<std::pair<std::string, double>> values;
    double wall_ms = 0.0;
};

/** Monotonic wall clock in milliseconds. */
double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** One scheduler column of the --sweep/--grid tables. */
struct SchedulerSetup
{
    const char* name;
    runtime::RuntimeConfig cfg;
};

std::vector<SchedulerSetup>
schedulerSetups()
{
    return {{"Baseline", runtime::baselineConfig()},
            {"Themis+FIFO", runtime::themisFifoConfig()},
            {"Themis+SCF", runtime::themisScfConfig()}};
}

/** Per-dimension fault-report rows from a finished run's tracker. */
std::vector<stats::FaultDimRow>
faultRows(const Topology& topo, const stats::UtilizationTracker& ut)
{
    std::vector<stats::FaultDimRow> rows;
    for (int d = 0; d < topo.numDims(); ++d) {
        const auto i = static_cast<std::size_t>(d);
        stats::FaultDimRow row;
        row.name = "dim" + std::to_string(d + 1) + " (" +
                   dimKindName(topo.dim(d).kind) + ")";
        row.capacity_events = ut.capacityEvents()[i];
        row.flaps = ut.flaps()[i];
        row.down_time = ut.downTime()[i];
        row.retries = ut.retries()[i];
        row.lost_bytes = ut.retryLostBytes()[i];
        row.fatal_retries = ut.fatalRetries()[i];
        const auto& backoff = ut.retryBackoff(i);
        if (backoff.count() > 0) {
            row.backoff_p99 = backoff.percentile(0.99);
            row.backoff_max = backoff.max();
        }
        rows.push_back(row);
    }
    return rows;
}

/** JSON array of per-job stats for the RunReport "jobs" section. */
std::string
jobsJson(const std::vector<cluster::JobStats>& jobs)
{
    stats::telemetry::JsonWriter w;
    w.beginArray();
    for (const auto& j : jobs) {
        w.beginObject();
        w.key("job").value(j.job);
        w.key("name").value(j.name);
        w.key("kind").value(cluster::jobKindName(j.kind));
        w.key("arrival_ns").value(j.arrival);
        w.key("finished_ns").value(j.finished);
        w.key("iterations").value(j.iterations);
        w.key("mean_iteration_ns").value(j.mean_iteration);
        w.key("exposed_share").value(j.exposed_share);
        w.key("requests_issued").value(j.requests_issued);
        w.key("requests_completed").value(j.requests_completed);
        w.key("mean_latency_ns").value(j.mean_latency);
        w.key("deadline_hits").value(j.deadline_hits);
        w.key("deadline_misses").value(j.deadline_misses);
        w.key("deadline_hit_rate").value(j.deadline_hit_rate);
        w.key("unit_p99_ns").value(j.unit_p99);
        w.key("unit_max_ns").value(j.unit_max);
        w.key("progressed_bytes").value(j.progressed);
        w.key("utilization").value(j.utilization);
        w.endObject();
    }
    w.endArray();
    return w.str();
}

/** JSON array of fault rows for the RunReport "fault" section. */
std::string
faultJson(const std::vector<stats::FaultDimRow>& rows)
{
    stats::telemetry::JsonWriter w;
    w.beginArray();
    for (const auto& r : rows) {
        w.beginObject();
        w.key("dim").value(r.name);
        w.key("capacity_events")
            .value(static_cast<std::uint64_t>(r.capacity_events));
        w.key("flaps").value(static_cast<std::uint64_t>(r.flaps));
        w.key("down_time_ns").value(r.down_time);
        w.key("retries").value(static_cast<std::uint64_t>(r.retries));
        w.key("backoff_p99_ns").value(r.backoff_p99);
        w.key("backoff_max_ns").value(r.backoff_max);
        w.key("lost_bytes").value(r.lost_bytes);
        w.key("fatal_retries")
            .value(static_cast<std::uint64_t>(r.fatal_retries));
        w.endObject();
    }
    w.endArray();
    return w.str();
}

/** JSON array of class rows for the RunReport "classes" section. */
std::string
classesJson(
    const std::vector<runtime::CommRuntime::ClassReport>& classes)
{
    stats::telemetry::JsonWriter w;
    w.beginArray();
    for (const auto& c : classes) {
        w.beginObject();
        w.key("tier").value(c.tier);
        w.key("name").value(priorityTierName(c.tier));
        w.key("weight").value(c.weight);
        w.key("issued").value(c.issued);
        w.key("completed").value(c.completed);
        w.key("mean_duration_ns").value(c.mean_duration);
        w.key("progressed_bytes").value(c.progressed);
        w.key("utilization").value(c.utilization);
        w.endObject();
    }
    w.endArray();
    return w.str();
}

/**
 * Attach the telemetry snapshot, write the --report artifact, and
 * announce it. No-op without --report.
 */
void
emitReport(stats::telemetry::RunReport& report,
           const std::string& path,
           const stats::telemetry::Telemetry* telem)
{
    if (path.empty())
        return;
    if (telem != nullptr) {
        report.attachMetrics(&telem->metrics);
        report.attachRecorder(&telem->recorder);
    }
    report.writeFile(path);
    std::printf("report: mode %s -> %s (schema %s)\n",
                report.mode().c_str(), path.c_str(),
                stats::telemetry::RunReport::kSchemaVersion);
}

/** Write the --trace artifact and announce it. No-op without it. */
void
emitTrace(const stats::TraceWriter& trace, const std::string& path)
{
    if (path.empty())
        return;
    trace.writeFile(path);
    std::printf("trace: %zu span(s), %zu instant(s) -> %s (open in "
                "ui.perfetto.dev or chrome://tracing)\n",
                trace.eventCount(), trace.instantCount(),
                path.c_str());
}

/** Record the adaptation headline numbers into a report. */
void
reportAdaptation(stats::telemetry::RunReport& report,
                 const runtime::CommRuntime& comm)
{
    report.setNumber("replans",
                     static_cast<double>(comm.replanCount()));
    report.setInfo("capacity_fingerprint",
                   hex16(comm.capacityFingerprint()));
}

/**
 * One-line adaptive re-planning summary after a faulted run; quiet
 * unless --adapt was given.
 */
void
printAdaptationSummary(const runtime::CommRuntime& comm)
{
    std::printf("adaptation: %llu re-plan(s), capacity epoch %#llx\n",
                static_cast<unsigned long long>(comm.replanCount()),
                static_cast<unsigned long long>(
                    comm.capacityFingerprint()));
}

} // namespace

int
main(int argc, char** argv)
{
    std::string topo_arg = "3D-SW_SW_SW_homo";
    std::string type_arg = "ar";
    std::string sched_arg = "scf";
    Bytes size = 1.0e9;
    int chunks = 64;
    bool enforce = false;
    bool validate = false;
    std::string trace_path;
    std::string report_path;
    std::string sweep_arg;
    std::string grid_arg;
    std::string jobs_arg;
    double priority_ratio = 0.0;
    double tier_ratio = 4.0;
    bool offset_search = false;
    int jobs = 0;
    int iterations = 0;
    std::string model_arg = "Transformer-1T";
    bool exactness = false;
    bool no_replay = false;
    int cycle_limit = 0; // 0 = auto (job-mix hyper-period)
    std::string faults_arg;
    bool adapt = false;
    double replan_threshold = 0.05;
    std::string shard_arg;
    std::string results_path;
    std::string merge_arg;
    int max_cells = 0;
    bool serve = false;

    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto need_value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (flag == "--topo") {
            topo_arg = need_value();
        } else if (flag == "--type") {
            type_arg = toLower(need_value());
        } else if (flag == "--size") {
            size = std::atof(need_value().c_str());
        } else if (flag == "--chunks") {
            chunks = std::atoi(need_value().c_str());
        } else if (flag == "--sched") {
            sched_arg = toLower(need_value());
        } else if (flag == "--enforce") {
            enforce = true;
        } else if (flag == "--trace") {
            trace_path = need_value();
        } else if (flag == "--report") {
            report_path = need_value();
        } else if (flag == "--validate") {
            validate = true;
        } else if (flag == "--sweep") {
            sweep_arg = need_value();
        } else if (flag == "--grid") {
            grid_arg = need_value();
        } else if (flag == "--priority") {
            priority_ratio = std::atof(need_value().c_str());
            if (priority_ratio < 1.0)
                usage(argv[0]);
        } else if (flag == "--jobs") {
            // An integer keeps the historical meaning (sweep worker
            // threads); anything else is a multi-job cluster spec.
            const std::string v = need_value();
            if (isInteger(v))
                jobs = std::atoi(v.c_str());
            else
                jobs_arg = v;
        } else if (flag == "--tier-ratio") {
            tier_ratio = std::atof(need_value().c_str());
            if (tier_ratio < 1.0)
                usage(argv[0]);
        } else if (flag == "--offset-search") {
            offset_search = true;
        } else if (flag == "--iterations") {
            iterations = std::atoi(need_value().c_str());
            if (iterations < 1)
                usage(argv[0]);
        } else if (flag == "--model") {
            model_arg = need_value();
        } else if (flag == "--exact") {
            exactness = true;
        } else if (flag == "--no-replay") {
            no_replay = true;
        } else if (flag == "--cycle-limit") {
            cycle_limit = std::atoi(need_value().c_str());
            if (cycle_limit < 1) {
                std::fprintf(stderr,
                             "--cycle-limit wants an integer >= 1 "
                             "(rounds); got '%s'\n",
                             argv[i]);
                usage(argv[0]);
            }
        } else if (flag == "--faults") {
            faults_arg = need_value();
        } else if (flag == "--adapt") {
            adapt = true;
        } else if (flag == "--replan-threshold") {
            replan_threshold = std::atof(need_value().c_str());
            if (replan_threshold < 0.0)
                usage(argv[0]);
        } else if (flag == "--shard") {
            shard_arg = need_value();
        } else if (flag == "--results") {
            results_path = need_value();
        } else if (flag == "--max-cells") {
            max_cells = std::atoi(need_value().c_str());
            if (max_cells < 1)
                usage(argv[0]);
        } else if (flag == "--merge") {
            merge_arg = need_value();
        } else if (flag == "--serve") {
            serve = true;
        } else {
            usage(argv[0]);
        }
    }

    // The telemetry sink and trace writer outlive the try block so
    // the RetryExhaustedError path can dump the flight-recorder tail
    // and write a mode-"fatal" report / partial trace.
    stats::telemetry::Telemetry telem;
    stats::TraceWriter trace;

    try {
        if (!merge_arg.empty()) {
            // Offline canonical merge of shard result stores: the
            // output is byte-equal to the canonicalBytes() of a
            // 1-process run over the same grid, so a plain diff (or
            // cmp) proves the sharded execution exact.
            const std::vector<std::string> parts =
                split(merge_arg, ',');
            if (parts.size() < 2)
                THEMIS_FATAL("--merge wants OUT,IN1[,IN2,...]; got '"
                             << merge_arg << "'");
            const std::vector<std::string> inputs(parts.begin() + 1,
                                                  parts.end());
            const std::string merged =
                sim::ResultStore::canonicalMerge(inputs);
            std::FILE* f = std::fopen(parts.front().c_str(), "wb");
            if (f == nullptr)
                THEMIS_FATAL("--merge: cannot write '" << parts.front()
                                                       << "'");
            std::fwrite(merged.data(), 1, merged.size(), f);
            std::fclose(f);
            std::printf("merged %zu store(s) -> %s (%zu bytes, "
                        "canonical)\n",
                        inputs.size(), parts.front().c_str(),
                        merged.size());
            if (!report_path.empty()) {
                stats::telemetry::RunReport report("merge");
                report.setInfo("output", parts.front());
                report.setNumber("inputs",
                                 static_cast<double>(inputs.size()));
                report.setNumber("bytes",
                                 static_cast<double>(merged.size()));
                emitReport(report, report_path, nullptr);
            }
            return 0;
        }

        const Topology topo = resolveTopology(topo_arg);

        CollectiveRequest req;
        req.size = size;
        req.chunks = chunks;
        if (type_arg == "ar")
            req.type = CollectiveType::AllReduce;
        else if (type_arg == "rs")
            req.type = CollectiveType::ReduceScatter;
        else if (type_arg == "ag")
            req.type = CollectiveType::AllGather;
        else if (type_arg == "a2a")
            req.type = CollectiveType::AllToAll;
        else
            usage(argv[0]);

        runtime::RuntimeConfig cfg;
        if (sched_arg == "base")
            cfg = runtime::baselineConfig();
        else if (sched_arg == "fifo")
            cfg = runtime::themisFifoConfig();
        else if (sched_arg == "scf")
            cfg = runtime::themisScfConfig();
        else
            usage(argv[0]);
        cfg.enforce_consistent_order = enforce;

        // Fault timelines drive one runtime's FaultDriver; the batch
        // modes build their own per-cell configs, so reject the
        // combination loudly instead of silently ignoring the spec.
        sim::FaultTimeline faults_tl;
        if (!faults_arg.empty()) {
            if (serve || !grid_arg.empty() || !sweep_arg.empty() ||
                priority_ratio >= 1.0)
                THEMIS_FATAL("--faults applies to the "
                             "single-collective, --iterations and "
                             "--jobs runs; drop it for "
                             "--grid/--sweep/--serve/--priority");
            faults_tl = sim::FaultTimeline::parse(faults_arg);
            faults_tl.validateForDims(topo.numDims());
            cfg.faults = &faults_tl;
        }
        cfg.adaptation.enabled = adapt;
        cfg.adaptation.replan_threshold = replan_threshold;

        // Telemetry rides along whenever an artifact was requested.
        // The registry is single-threaded, so only the single-runtime
        // modes (single collective, --iterations, --jobs cluster)
        // plug it into the runtime config; the batch modes
        // (--grid/--sweep/--serve/--priority) run cells on worker
        // threads and publish main-thread metrics plus their own
        // report sections instead.
        if (!trace_path.empty())
            telem.trace = &trace;
        if ((!report_path.empty() || !trace_path.empty()) && !serve &&
            grid_arg.empty() && sweep_arg.empty() &&
            priority_ratio < 1.0)
            cfg.telemetry = &telem;

        // --cycle-limit tunes the period-k convergence replay engine;
        // the batch/service modes simulate every cell in full and
        // would silently ignore it — reject the combination loudly.
        if (cycle_limit > 0 &&
            (serve || !grid_arg.empty() || !sweep_arg.empty() ||
             priority_ratio >= 1.0)) {
            THEMIS_FATAL(
                "--cycle-limit tunes the convergence replay engine; "
                "--grid/--sweep/--serve/--priority cells never "
                "replay — drop it, or run --iterations/--jobs");
        }

        if (serve) {
            // Memoized what-if query loop (grammar in the usage
            // comment). Misses of each batch fan across the sweep
            // workers against one warm shared plan cache; repeats —
            // within a batch, across batches, or recorded by an
            // earlier grid/serve run in --results — are answered from
            // the store without re-simulating. Collective query keys
            // are identical to --grid cell keys, so a sharded grid
            // pre-populates the service.
            const std::vector<SchedulerSetup> setups =
                schedulerSetups();
            std::unique_ptr<sim::ResultStore> store;
            if (!results_path.empty())
                store =
                    std::make_unique<sim::ResultStore>(results_path);
            std::unordered_map<std::string, sim::ResultRecord> session;
            PlanCache cache;

            struct Query
            {
                std::string line;
                std::string error; ///< non-empty: rejected at parse
                std::string key;
                std::optional<Topology> topo;
                std::size_t sched = 2; ///< setups index (scf)
                int chunks = 0;
                CollectiveType type = CollectiveType::AllReduce;
                Bytes size = 0.0;
                bool is_model = false;
                std::string model;
                int iters = 3;
            };
            auto parseQuery = [&](const std::string& line) {
                Query q;
                q.line = line;
                q.chunks = chunks;
                q.size = size;
                std::string topo_tok, type_tok = type_arg;
                std::istringstream in(line);
                std::string tok;
                while (in >> tok) {
                    const std::size_t eq = tok.find('=');
                    if (eq == std::string::npos) {
                        q.error =
                            "token '" + tok + "' is not key=value";
                        return q;
                    }
                    const std::string key = toLower(tok.substr(0, eq));
                    const std::string val = tok.substr(eq + 1);
                    if (val.find_first_of(";=") != std::string::npos) {
                        q.error = "value '" + val +
                                  "' contains a reserved ';' or '='";
                        return q;
                    }
                    if (key == "topo") {
                        topo_tok = val;
                    } else if (key == "sched") {
                        const std::string s = toLower(val);
                        if (s == "base")
                            q.sched = 0;
                        else if (s == "fifo")
                            q.sched = 1;
                        else if (s == "scf")
                            q.sched = 2;
                        else {
                            q.error = "bad sched '" + val +
                                      "' (base|fifo|scf)";
                            return q;
                        }
                    } else if (key == "chunks") {
                        q.chunks = std::atoi(val.c_str());
                        if (q.chunks < 1) {
                            q.error = "bad chunks '" + val + "'";
                            return q;
                        }
                    } else if (key == "type") {
                        type_tok = toLower(val);
                    } else if (key == "size") {
                        q.size = std::atof(val.c_str());
                        if (q.size <= 0.0) {
                            q.error = "bad size '" + val + "'";
                            return q;
                        }
                    } else if (key == "model") {
                        q.is_model = true;
                        q.model = val;
                    } else if (key == "iters") {
                        q.iters = std::atoi(val.c_str());
                        if (q.iters < 1) {
                            q.error = "bad iters '" + val + "'";
                            return q;
                        }
                    } else {
                        q.error = "unknown key '" + key +
                                  "' (topo sched chunks type size "
                                  "model iters)";
                        return q;
                    }
                }
                if (topo_tok.empty()) {
                    q.error = "topo= is required";
                    return q;
                }
                try {
                    q.topo = resolveTopology(topo_tok);
                    if (q.is_model)
                        (void)models::byName(q.model);
                } catch (const ConfigError& e) {
                    q.error = e.what();
                    return q;
                }
                if (!q.is_model) {
                    if (type_tok == "ar")
                        q.type = CollectiveType::AllReduce;
                    else if (type_tok == "rs")
                        q.type = CollectiveType::ReduceScatter;
                    else if (type_tok == "ag")
                        q.type = CollectiveType::AllGather;
                    else if (type_tok == "a2a")
                        q.type = CollectiveType::AllToAll;
                    else {
                        q.error = "bad type '" + type_tok +
                                  "' (ar|rs|ag|a2a)";
                        return q;
                    }
                }
                std::vector<std::pair<std::string, std::string>> kv = {
                    {"topo", topo_tok},
                    {"sched", setups[q.sched].name},
                    {"chunks", std::to_string(q.chunks)},
                    {"enforce", enforce ? "1" : "0"}};
                if (q.is_model) {
                    kv.push_back({"model", q.model});
                    kv.push_back({"iters", std::to_string(q.iters)});
                } else {
                    kv.push_back({"type", type_tok});
                    kv.push_back({"size", keyDouble(q.size)});
                }
                q.key = sim::makeResultKey(std::move(kv));
                return q;
            };

            std::size_t n_q = 0, n_hit = 0, n_miss = 0, n_err = 0;
            double hit_ms = 0.0, miss_ms = 0.0;
            std::vector<Query> batch;
            auto lookupRecord = [&](const std::string& key)
                -> const sim::ResultRecord* {
                if (store != nullptr)
                    return store->find(key);
                const auto it = session.find(key);
                return it == session.end() ? nullptr : &it->second;
            };
            auto flush = [&]() {
                if (batch.empty())
                    return;
                // The batch's unique unanswered keys simulate in
                // parallel; everything else is a memoized hit.
                std::vector<std::size_t> miss_idx;
                std::unordered_set<std::string> batch_keys;
                for (std::size_t i = 0; i < batch.size(); ++i) {
                    const Query& q = batch[i];
                    if (!q.error.empty() ||
                        lookupRecord(q.key) != nullptr ||
                        !batch_keys.insert(q.key).second)
                        continue;
                    miss_idx.push_back(i);
                }
                const auto outs = sim::sweepIndexed(
                    miss_idx.size(),
                    [&](std::size_t j, sim::EventQueue& queue) {
                        const Query& q = batch[miss_idx[j]];
                        const double t0 = nowMs();
                        CellOutcome out;
                        runtime::RuntimeConfig run_cfg =
                            setups[q.sched].cfg;
                        run_cfg.enforce_consistent_order = enforce;
                        run_cfg.plan_cache = &cache;
                        run_cfg.default_chunks = q.chunks;
                        if (q.is_model) {
                            runtime::CommRuntime comm(queue, *q.topo,
                                                      run_cfg);
                            workload::TrainingLoop loop(
                                comm, models::byName(q.model));
                            workload::ConvergenceOptions copts;
                            copts.iterations = q.iters;
                            const auto r = workload::runConverged(
                                comm, loop, copts);
                            out.values = {
                                {"total_ns", r.total.total},
                                {"iter_ns", r.last.total},
                                {"util", r.utilization}};
                        } else {
                            CollectiveRequest r;
                            r.type = q.type;
                            r.size = q.size;
                            r.chunks = q.chunks;
                            runtime::CommRuntime comm(queue, *q.topo,
                                                      run_cfg);
                            const int cid = comm.issue(r);
                            queue.run();
                            comm.finalizeStats();
                            out.values = {
                                {"time_ns",
                                 comm.record(cid).duration()},
                                {"util", comm.utilization()
                                             .weightedUtilization()}};
                        }
                        out.wall_ms = nowMs() - t0;
                        return out;
                    },
                    sim::SweepOptions{jobs});
                std::unordered_map<std::string, double> simulated_ms;
                for (std::size_t j = 0; j < miss_idx.size(); ++j) {
                    const Query& q = batch[miss_idx[j]];
                    sim::ResultRecord rec;
                    rec.key = q.key;
                    rec.values = outs[j].values;
                    rec.fingerprint =
                        valuesFingerprint(outs[j].values);
                    rec.wall_ms = outs[j].wall_ms;
                    simulated_ms[q.key] = outs[j].wall_ms;
                    if (store != nullptr)
                        store->append(std::move(rec));
                    else
                        session.emplace(q.key, std::move(rec));
                }
                for (const Query& q : batch) {
                    ++n_q;
                    telem.metrics.counter("serve.queries").add();
                    if (!q.error.empty()) {
                        ++n_err;
                        telem.metrics.counter("serve.errors").add();
                        std::printf("error: %s (query '%s')\n",
                                    q.error.c_str(), q.line.c_str());
                        continue;
                    }
                    const auto sim_it = simulated_ms.find(q.key);
                    const bool miss = sim_it != simulated_ms.end();
                    const double t0 = nowMs();
                    const sim::ResultRecord* rec = lookupRecord(q.key);
                    double ms = nowMs() - t0;
                    THEMIS_ASSERT(rec != nullptr,
                                  "serve: evaluated query missing "
                                  "from the store");
                    std::string vals;
                    for (const auto& [name, v] : rec->values)
                        vals += " " + name + "=" + keyDouble(v);
                    if (miss) {
                        ms = sim_it->second;
                        // Further repeats in this batch are hits.
                        simulated_ms.erase(sim_it);
                        ++n_miss;
                        miss_ms += ms;
                        telem.metrics.counter("serve.misses").add();
                        telem.metrics.histogram("serve.miss_ns")
                            .record(ms * 1e6);
                    } else {
                        ++n_hit;
                        hit_ms += ms;
                        telem.metrics.counter("serve.hits").add();
                        telem.metrics.histogram("serve.hit_ns")
                            .record(ms * 1e6);
                    }
                    telem.metrics.histogram("serve.query_ns")
                        .record(ms * 1e6);
                    std::printf("result %s ::%s (%s %.4f ms)\n",
                                q.key.c_str(), vals.c_str(),
                                miss ? "miss" : "hit", ms);
                }
                batch.clear();
            };

            std::string line;
            while (std::getline(std::cin, line)) {
                if (line.find_first_not_of(" \t\r") ==
                    std::string::npos) {
                    flush();
                    continue;
                }
                batch.push_back(parseQuery(line));
            }
            flush();

            const double mean_hit =
                n_hit > 0 ? hit_ms / static_cast<double>(n_hit) : 0.0;
            const double mean_miss =
                n_miss > 0 ? miss_ms / static_cast<double>(n_miss)
                           : 0.0;
            std::printf("serve summary: queries=%zu hits=%zu "
                        "misses=%zu errors=%zu mean_hit_ms=%.4f "
                        "mean_miss_ms=%.3f",
                        n_q, n_hit, n_miss, n_err, mean_hit,
                        mean_miss);
            if (n_hit > 0 && n_miss > 0 && mean_hit > 0.0)
                std::printf(" warm_speedup=%.1fx",
                            mean_miss / mean_hit);
            std::printf("\n");
            const auto cache_stats = cache.stats();
            std::printf("plan cache: %zu plans, %llu hits / %llu "
                        "misses\n",
                        cache.planCount(),
                        static_cast<unsigned long long>(
                            cache_stats.plan_hits),
                        static_cast<unsigned long long>(
                            cache_stats.plan_misses));
            if (!report_path.empty()) {
                stats::telemetry::RunReport report("serve");
                report.setInfo("results_store", results_path);
                report.setNumber("queries",
                                 static_cast<double>(n_q));
                report.setNumber("hits", static_cast<double>(n_hit));
                report.setNumber("misses",
                                 static_cast<double>(n_miss));
                report.setNumber("errors",
                                 static_cast<double>(n_err));
                report.setNumber("mean_hit_ms", mean_hit);
                report.setNumber("mean_miss_ms", mean_miss);
                report.setNumber("plan_cache_plans",
                                 static_cast<double>(
                                     cache.planCount()));
                report.setNumber("plan_cache_hits",
                                 static_cast<double>(
                                     cache_stats.plan_hits));
                report.setNumber("plan_cache_misses",
                                 static_cast<double>(
                                     cache_stats.plan_misses));
                emitReport(report, report_path, &telem);
            }
            return 0;
        }

        if (!jobs_arg.empty() && grid_arg.empty() &&
            sweep_arg.empty()) {
            // Multi-job cluster co-simulation on one shared fabric.
            // Free-running by default; --exact/--no-replay/
            // --cycle-limit select the lockstep convergence path
            // through the period-k steady-cycle replay engine.
            if (priority_ratio >= 1.0) {
                THEMIS_FATAL(
                    "--priority is the two-tenant contention demo; "
                    "cluster runs take --tier-ratio for the weight "
                    "ladder instead");
            }
            const int cluster_iters = iterations >= 1 ? iterations : 3;
            std::vector<cluster::JobSpec> specs =
                parseJobSpecs(jobs_arg, cluster_iters);

            // --sched and --chunks apply to the cluster run too (the
            // Themis scheduler upgrades to its priority-aware variant
            // when a weight ladder is in play); --size/--type describe
            // the single-collective mode and are inert here.
            runtime::RuntimeConfig ccfg = cfg;
            if (ccfg.scheduler == SchedulerKind::Themis &&
                tier_ratio > 1.0)
                ccfg.scheduler = SchedulerKind::ThemisPriority;
            ccfg.priority = PriorityPolicy::tiered(tier_ratio);
            ccfg.default_chunks = chunks;
            PlanCache cache;
            ccfg.plan_cache = &cache;

            std::printf("%s", topo.describe().c_str());
            std::printf("\n%zu-job cluster co-simulation (%s, policy "
                        "%s):\n\n",
                        specs.size(),
                        schedulerKindName(ccfg.scheduler).c_str(),
                        ccfg.priority.describe().c_str());

            cluster::JobScheduler sched(specs);

            const bool lockstep_mode =
                exactness || no_replay || cycle_limit > 0;
            std::vector<TimeNs> best_offsets;
            if (offset_search) {
                cluster::OffsetSearchOptions sopts;
                sopts.threads = jobs;
                const auto res = cluster::searchPhaseOffsets(
                    topo, ccfg, specs, sopts);
                stats::TextTable t(
                    {"Phase fraction", "Aggregate iter time"});
                for (std::size_t i = 0; i < res.candidates.size();
                     ++i) {
                    t.addRow({fmtDouble(
                                  static_cast<double>(i) /
                                      res.candidates.size(),
                                  3),
                              fmtTime(res.candidates[i].metric)});
                }
                std::printf("%s", t.render().c_str());
                std::printf("\n  offset search: zero-offset %s -> "
                            "best %s (base period %s)\n\n",
                            fmtTime(res.zero_metric).c_str(),
                            fmtTime(res.best.metric).c_str(),
                            fmtTime(res.base_period).c_str());
                if (lockstep_mode) {
                    // The lockstep path applies offsets as per-round
                    // phase delays (rounds restart from quiescence,
                    // so arrival shifts cannot survive them).
                    best_offsets = res.best.offsets;
                } else {
                    sched = cluster::JobScheduler(specs);
                    sched.shiftArrivals(res.best.offsets);
                }
            }

            if (lockstep_mode) {
                const std::int64_t limit =
                    cycle_limit > 0
                        ? cycle_limit
                        : cluster::JobScheduler::kDefaultCycleLimit;
                const auto plan = sched.lockstepPlan(limit);
                if (!plan.eligible)
                    THEMIS_FATAL("--jobs convergence run refused: "
                                 << plan.reason);

                workload::ConvergenceOptions copts;
                copts.iterations = cluster_iters;
                copts.replay = !no_replay;
                copts.exactness_check = exactness;
                copts.cycle_limit = cycle_limit;

                sim::EventQueue queue;
                cluster::Cluster cl(queue, topo, ccfg,
                                    std::move(sched));
                const auto t0 = std::chrono::steady_clock::now();
                const auto r = cl.runConverged(copts, best_offsets);
                const double wall_ms =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

                stats::ConvergenceRunRow crow;
                crow.label = exactness
                                 ? "exactness"
                                 : (no_replay ? "full" : "replay");
                crow.iterations = r.iterations;
                crow.simulated = r.simulated_iterations;
                crow.replayed = r.replayed_iterations;
                crow.cycle_length = r.cycle_length;
                crow.total_time = r.total.total;
                crow.last_iteration = r.last.total;
                crow.utilization = r.utilization;
                crow.wall_ms = wall_ms;
                std::printf(
                    "%s",
                    stats::renderConvergenceTable({crow}).c_str());

                const auto jstats =
                    cl.lockstepJobStats(r.iterations);
                std::vector<stats::JobUsageRow> jrows;
                for (std::size_t j = 0; j < jstats.size(); ++j) {
                    const auto& js = jstats[j];
                    stats::JobUsageRow row;
                    row.name = js.name;
                    row.kind = cluster::jobKindName(js.kind);
                    row.arrival = js.arrival;
                    row.jct = r.total.total;
                    row.units =
                        js.kind == cluster::JobKind::Training
                            ? js.iterations
                            : js.requests_completed;
                    row.mean_unit =
                        js.kind == cluster::JobKind::Training
                            ? js.mean_iteration
                            : js.mean_latency;
                    row.exposed_share = js.exposed_share;
                    row.deadline_hit_rate = js.deadline_hit_rate;
                    row.unit_p99 = js.unit_p99;
                    row.unit_max = js.unit_max;
                    // No per-job wire totals across replayed rounds.
                    row.progressed = -1.0;
                    row.utilization = -1.0;
                    row.cycle_units =
                        r.cycle_length > 0
                            ? r.cycle_length / plan.cadences[j]
                            : -1;
                    jrows.push_back(row);
                }
                std::printf("\n%s",
                            stats::renderJobTable(jrows).c_str());

                std::printf("\n  cycle replay  : hyper-period %d "
                            "round(s), cycle %s, %d simulated + %d "
                            "replayed of %d rounds\n",
                            r.hyper_period,
                            r.cycle_length > 0
                                ? std::to_string(r.cycle_length)
                                      .c_str()
                                : "-",
                            r.epochs_simulated, r.epochs_replayed,
                            r.iterations);
                if (r.steady_at >= 0) {
                    std::printf(
                        "  steady cycle at round %d (fingerprint "
                        "%016llx)%s\n",
                        r.steady_at,
                        static_cast<unsigned long long>(
                            r.steady_fingerprint),
                        exactness ? ", replay prediction asserted "
                                    "bit-identical"
                                  : "");
                } else if (exactness) {
                    // A vacuous pass would defeat the proof mode: no
                    // steady cycle means the exactness assertions
                    // never executed.
                    THEMIS_FATAL(
                        "--exact: no steady cycle was confirmed, so "
                        "nothing was asserted; raise --iterations "
                        "(the mix needs ~2x its hyper-period of "
                        "rounds) or --cycle-limit");
                } else {
                    std::printf("  steady cycle not confirmed; every "
                                "round simulated\n");
                }
                if (!r.replay_refusal.empty())
                    std::printf("  replay refused: %s\n",
                                r.replay_refusal.c_str());
                if (!faults_arg.empty())
                    std::printf(
                        "\nfault report, last simulated round "
                        "(--faults \"%s\"):\n%s",
                        faults_arg.c_str(),
                        stats::renderFaultTable(
                            faultRows(topo,
                                      cl.runtime().utilization()))
                            .c_str());
                if (adapt)
                    printAdaptationSummary(cl.runtime());
                cl.runtime().publishTelemetry();
                emitTrace(trace, trace_path);
                if (!report_path.empty()) {
                    stats::telemetry::RunReport report("jobs");
                    report.setInfo("topology", topo.name());
                    report.setInfo(
                        "scheduler",
                        schedulerKindName(ccfg.scheduler));
                    report.setInfo("policy",
                                   ccfg.priority.describe());
                    report.setInfo("run", crow.label);
                    if (!faults_arg.empty())
                        report.setInfo("faults", faults_arg);
                    report.setNumber("rounds", r.iterations);
                    report.setNumber("simulated_rounds",
                                     r.simulated_iterations);
                    report.setNumber("replayed_rounds",
                                     r.replayed_iterations);
                    report.setNumber("cycle_length", r.cycle_length);
                    report.setNumber("hyper_period", r.hyper_period);
                    report.setNumber("total_ns", r.total.total);
                    report.setNumber("utilization", r.utilization);
                    report.setNumber("wall_ms", wall_ms);
                    if (adapt)
                        reportAdaptation(report, cl.runtime());
                    report.addSection("jobs", jobsJson(jstats));
                    if (!faults_arg.empty())
                        report.addSection(
                            "fault",
                            faultJson(faultRows(
                                topo, cl.runtime().utilization())));
                    emitReport(report, report_path, &telem);
                }
                return 0;
            }

            sim::EventQueue queue;
            cluster::Cluster cl(queue, topo, ccfg, std::move(sched));
            const auto elig = cl.replayEligibility();
            const auto rep = cl.run();

            std::vector<stats::JobUsageRow> rows;
            for (const auto& j : rep.jobs) {
                stats::JobUsageRow row;
                row.name = j.name;
                row.kind = cluster::jobKindName(j.kind);
                row.arrival = j.arrival;
                row.jct = j.jct();
                row.units = j.kind == cluster::JobKind::Training
                                ? j.iterations
                                : j.requests_completed;
                row.mean_unit =
                    j.kind == cluster::JobKind::Training
                        ? j.mean_iteration
                        : j.mean_latency;
                row.exposed_share = j.exposed_share;
                row.deadline_hit_rate = j.deadline_hit_rate;
                row.unit_p99 = j.unit_p99;
                row.unit_max = j.unit_max;
                row.progressed = j.progressed;
                row.utilization = j.utilization;
                rows.push_back(row);
            }
            std::printf("%s", stats::renderJobTable(rows).c_str());
            std::vector<stats::ClassUsageRow> crows;
            for (const auto& c : rep.classes) {
                if (c.issued == 0 && c.progressed <= 0.0)
                    continue;
                stats::ClassUsageRow row;
                row.name = priorityTierName(c.tier);
                row.weight = c.weight;
                row.collectives = c.completed;
                row.mean_duration = c.mean_duration;
                row.progressed = c.progressed;
                row.utilization = c.utilization;
                crows.push_back(row);
            }
            std::printf("\n%s", stats::renderClassTable(crows).c_str());
            std::printf("\n  makespan      : %s\n",
                        fmtTime(rep.makespan).c_str());
            std::printf("  fabric util   : %s\n",
                        fmtPercent(rep.fabric_utilization).c_str());
            std::printf("  bytes moved   : %s\n",
                        fmtBytes(rep.total_bytes).c_str());
            std::printf("  replay        : %s\n",
                        elig.eligible
                            ? "eligible (lockstep training mix)"
                            : elig.reason.c_str());
            if (!faults_arg.empty())
                std::printf("\nfault report (--faults \"%s\"):\n%s",
                            faults_arg.c_str(),
                            stats::renderFaultTable(
                                faultRows(topo,
                                          cl.runtime().utilization()))
                                .c_str());
            if (adapt)
                printAdaptationSummary(cl.runtime());
            emitTrace(trace, trace_path);
            if (!report_path.empty()) {
                stats::telemetry::RunReport report("jobs");
                report.setInfo("topology", topo.name());
                report.setInfo("scheduler",
                               schedulerKindName(ccfg.scheduler));
                report.setInfo("policy", ccfg.priority.describe());
                report.setInfo("run", "free-running");
                if (!faults_arg.empty())
                    report.setInfo("faults", faults_arg);
                report.setNumber("makespan_ns", rep.makespan);
                report.setNumber("fabric_utilization",
                                 rep.fabric_utilization);
                report.setNumber("total_bytes", rep.total_bytes);
                if (adapt)
                    reportAdaptation(report, cl.runtime());
                report.addSection("jobs", jobsJson(rep.jobs));
                report.addSection("classes",
                                  classesJson(rep.classes));
                if (!faults_arg.empty())
                    report.addSection(
                        "fault",
                        faultJson(faultRows(
                            topo, cl.runtime().utilization())));
                emitReport(report, report_path, &telem);
            }
            return 0;
        }

        if (iterations >= 1) {
            // Multi-iteration convergence run: train --model on
            // --topo under --sched for N iterations through the
            // steady-state replay engine.
            PlanCache cache;
            cfg.plan_cache = &cache;
            sim::EventQueue queue;
            runtime::CommRuntime comm(queue, topo, cfg);
            workload::TrainingLoop loop(comm,
                                        models::byName(model_arg));
            workload::ConvergenceOptions opts;
            opts.iterations = iterations;
            opts.replay = !no_replay;
            opts.exactness_check = exactness;
            opts.cycle_limit = cycle_limit;
            const auto t0 = std::chrono::steady_clock::now();
            const auto r = workload::runConverged(comm, loop, opts);
            const double wall_ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

            std::printf("%s", topo.describe().c_str());
            std::printf("\n%s x %d training iterations under %s%s:\n\n",
                        model_arg.c_str(), iterations,
                        schedulerKindName(cfg.scheduler).c_str(),
                        exactness ? " (exactness-check mode)" : "");
            stats::ConvergenceRunRow row;
            row.label = exactness ? "exactness"
                                  : (no_replay ? "full" : "replay");
            row.iterations = r.iterations;
            row.simulated = r.simulated_iterations;
            row.replayed = r.replayed_iterations;
            row.cycle_length = r.cycle_length;
            row.total_time = r.total.total;
            row.last_iteration = r.last.total;
            row.utilization = r.utilization;
            row.wall_ms = wall_ms;
            std::printf("%s",
                        stats::renderConvergenceTable({row}).c_str());

            std::printf("\n  per-iteration decomposition (steady): "
                        "fwd %s, bwd %s, exposed MP %s, exposed DP "
                        "%s\n",
                        fmtTime(r.last.fwd_compute).c_str(),
                        fmtTime(r.last.bwd_compute).c_str(),
                        fmtTime(r.last.exposed_mp).c_str(),
                        fmtTime(r.last.exposed_dp).c_str());
            if (r.steady_at >= 0) {
                std::printf("  steady state at iteration %d "
                            "(fingerprint %016llx)%s\n",
                            r.steady_at,
                            static_cast<unsigned long long>(
                                r.steady_fingerprint),
                            exactness ? ", replay prediction asserted "
                                        "bit-identical"
                                      : "");
            } else if (exactness) {
                // A vacuous pass would defeat the proof mode (and the
                // CI smoke built on it): no steady state means the
                // exactness assertions never executed.
                THEMIS_FATAL(
                    "--exact: steady state was never reached, so "
                    "nothing was asserted; raise --iterations or "
                    "check why iterations stopped repeating");
            } else {
                std::printf("  steady state not reached; every "
                            "iteration simulated\n");
            }
            std::printf("  %ld collectives, %llu chunk ops, plan "
                        "cache %zu plans\n",
                        r.collectives,
                        static_cast<unsigned long long>(r.ops),
                        cache.planCount());
            // Fault counters are per-iteration-epoch state (they are
            // mixed into the epoch fingerprint, so steady-state
            // detection sees fault activity); the report therefore
            // covers the last simulated iteration, not the whole run.
            if (!faults_arg.empty())
                std::printf("\nfault report, last simulated iteration "
                            "(--faults \"%s\"):\n%s",
                            faults_arg.c_str(),
                            stats::renderFaultTable(
                                faultRows(topo, comm.utilization()))
                                .c_str());
            if (adapt)
                printAdaptationSummary(comm);
            comm.publishTelemetry();
            emitTrace(trace, trace_path);
            if (!report_path.empty()) {
                stats::telemetry::RunReport report("iterations");
                report.setInfo("topology", topo.name());
                report.setInfo("model", model_arg);
                report.setInfo("scheduler",
                               schedulerKindName(cfg.scheduler));
                report.setInfo("run",
                               exactness
                                   ? "exactness"
                                   : (no_replay ? "full" : "replay"));
                if (!faults_arg.empty())
                    report.setInfo("faults", faults_arg);
                report.setNumber("iterations", r.iterations);
                report.setNumber("simulated_iterations",
                                 r.simulated_iterations);
                report.setNumber("replayed_iterations",
                                 r.replayed_iterations);
                report.setNumber("cycle_length", r.cycle_length);
                report.setNumber("steady_at", r.steady_at);
                report.setNumber("total_ns", r.total.total);
                report.setNumber("iteration_ns", r.last.total);
                report.setNumber("utilization", r.utilization);
                report.setNumber("collectives",
                                 static_cast<double>(r.collectives));
                report.setNumber("chunk_ops",
                                 static_cast<double>(r.ops));
                report.setNumber("wall_ms", wall_ms);
                report.setNumber("plan_cache_plans",
                                 static_cast<double>(
                                     cache.planCount()));
                if (adapt)
                    reportAdaptation(report, comm);
                if (!faults_arg.empty())
                    report.addSection(
                        "fault", faultJson(faultRows(
                                     topo, comm.utilization())));
                emitReport(report, report_path, &telem);
            }
            return 0;
        }

        if (priority_ratio >= 1.0) {
            // Two-tenant priority demo: an urgent All-Reduce chain
            // (--size / 32 per collective) contends with bulk
            // All-Reduces of --size under the priority-aware Themis
            // scheduler. Solo runs of each tenant provide the
            // slowdown baselines.
            runtime::RuntimeConfig pcfg = runtime::themisScfConfig();
            pcfg.scheduler = SchedulerKind::ThemisPriority;
            pcfg.enforce_consistent_order = enforce;
            if (priority_ratio > 1.0)
                pcfg.priority = PriorityPolicy::tiered(priority_ratio);
            const int chain = 8, bulk_count = 2;
            const Bytes hi_size = size / 32.0;

            struct TenantRun
            {
                TimeNs hi_mean = 0.0, lo_mean = 0.0, makespan = 0.0;
            };
            auto run_tenants = [&](bool run_hi, bool run_lo,
                                   sim::EventQueue& queue,
                                   runtime::CommRuntime& comm) {
                int hi_remaining = run_hi ? chain : 0;
                std::vector<int> hi_ids, lo_ids;
                std::function<void()> issue_hi = [&] {
                    if (hi_remaining == 0)
                        return;
                    --hi_remaining;
                    CollectiveRequest r;
                    r.type = CollectiveType::AllReduce;
                    r.size = hi_size;
                    r.priority_tier =
                        static_cast<int>(PriorityTier::Urgent);
                    hi_ids.push_back(comm.issue(r, [&] { issue_hi(); }));
                };
                if (run_hi)
                    issue_hi();
                for (int i = 0; run_lo && i < bulk_count; ++i) {
                    CollectiveRequest r;
                    r.type = CollectiveType::AllReduce;
                    r.size = size;
                    r.priority_tier =
                        static_cast<int>(PriorityTier::Bulk);
                    lo_ids.push_back(comm.issue(r));
                }
                queue.run();
                comm.finalizeStats();
                TenantRun out;
                out.makespan = queue.now();
                for (int cid : hi_ids)
                    out.hi_mean += comm.record(cid).duration();
                if (!hi_ids.empty())
                    out.hi_mean /= static_cast<double>(hi_ids.size());
                for (int cid : lo_ids)
                    out.lo_mean += comm.record(cid).duration();
                if (!lo_ids.empty())
                    out.lo_mean /= static_cast<double>(lo_ids.size());
                return out;
            };

            sim::EventQueue q_hi, q_lo, q_both;
            runtime::CommRuntime solo_hi_comm(q_hi, topo, pcfg);
            const TenantRun solo_hi =
                run_tenants(true, false, q_hi, solo_hi_comm);
            runtime::CommRuntime solo_lo_comm(q_lo, topo, pcfg);
            const TenantRun solo_lo =
                run_tenants(false, true, q_lo, solo_lo_comm);
            runtime::CommRuntime both_comm(q_both, topo, pcfg);
            const TenantRun both =
                run_tenants(true, true, q_both, both_comm);

            std::printf("%s", topo.describe().c_str());
            std::printf("\npriority contention demo (%s, policy %s):\n"
                        "  urgent tenant: %d x %s AR chain; bulk "
                        "tenant: %d x %s AR\n\n",
                        schedulerKindName(pcfg.scheduler).c_str(),
                        pcfg.priority.describe().c_str(), chain,
                        fmtBytes(hi_size).c_str(), bulk_count,
                        fmtBytes(size).c_str());
            std::vector<stats::ClassUsageRow> rows;
            for (const auto& c : both_comm.classReports()) {
                stats::ClassUsageRow row;
                row.name = pcfg.priority.isUniform()
                               ? "all (uniform)"
                               : priorityTierName(c.tier);
                row.weight = c.weight;
                row.collectives = c.completed;
                row.mean_duration = c.mean_duration;
                row.progressed = c.progressed;
                row.utilization = c.utilization;
                // Per-class slowdowns only make sense when classes
                // are separated: under the uniform policy (W = 1)
                // class 0 mixes both tenants, and dividing its mean
                // by a single tenant's solo baseline would be
                // meaningless (the per-tenant means print below).
                if (!pcfg.priority.isUniform()) {
                    if (c.tier ==
                            static_cast<int>(PriorityTier::Urgent) &&
                        solo_hi.hi_mean > 0.0)
                        row.slowdown =
                            c.mean_duration / solo_hi.hi_mean;
                    if (c.tier ==
                            static_cast<int>(PriorityTier::Bulk) &&
                        solo_lo.lo_mean > 0.0)
                        row.slowdown =
                            c.mean_duration / solo_lo.lo_mean;
                }
                rows.push_back(row);
            }
            std::printf("%s", stats::renderClassTable(rows).c_str());
            std::printf("\n  contended makespan : %s\n",
                        fmtTime(both.makespan).c_str());
            std::printf("  urgent mean  %s (solo %s)\n",
                        fmtTime(both.hi_mean).c_str(),
                        fmtTime(solo_hi.hi_mean).c_str());
            std::printf("  bulk mean    %s (solo %s)\n",
                        fmtTime(both.lo_mean).c_str(),
                        fmtTime(solo_lo.lo_mean).c_str());
            if (!report_path.empty()) {
                stats::telemetry::RunReport report("priority");
                report.setInfo("topology", topo.name());
                report.setInfo("policy", pcfg.priority.describe());
                report.setNumber("contended_makespan_ns",
                                 both.makespan);
                report.setNumber("urgent_mean_ns", both.hi_mean);
                report.setNumber("urgent_solo_ns", solo_hi.hi_mean);
                report.setNumber("bulk_mean_ns", both.lo_mean);
                report.setNumber("bulk_solo_ns", solo_lo.lo_mean);
                report.addSection(
                    "classes",
                    classesJson(both_comm.classReports()));
                emitReport(report, report_path, &telem);
            }
            return 0;
        }

        if (!grid_arg.empty() || !sweep_arg.empty()) {
            // Topology-list grid: every listed platform x all three
            // schedulers (x the --sweep chunk counts when given, x
            // the --jobs cluster mixes when given), one independent
            // simulation per cell, one plan cache shared read-mostly
            // across the grid's workers. A bare --sweep is the
            // one-topology grid over --topo.
            //
            // Cells are enumerated into a canonical ordered list by
            // pure index arithmetic, so every process — whatever its
            // --shard — agrees on cell order and keys; --shard i/N
            // owns the strided subset, --results streams completed
            // cells to a crash-safe journal whose recorded cells are
            // skipped on restart, and --max-cells caps fresh work to
            // interrupt a run deterministically (resume testing).
            std::vector<GridTopo> grid_topos;
            if (!grid_arg.empty())
                grid_topos = parseGridList(grid_arg);
            else
                grid_topos.push_back({topo_arg, topo});
            std::vector<int> chunk_list;
            if (!sweep_arg.empty()) {
                for (const auto& tok : split(sweep_arg, ','))
                    chunk_list.push_back(std::atoi(tok.c_str()));
                for (int c : chunk_list)
                    if (c < 1)
                        THEMIS_FATAL("bad --sweep chunk count list '"
                                     << sweep_arg << "'");
            } else {
                chunk_list.push_back(chunks);
            }
            const int cluster_iters = iterations >= 1 ? iterations : 3;
            std::vector<JobsMix> mixes;
            if (!jobs_arg.empty())
                mixes = parseJobsMixes(jobs_arg, cluster_iters);
            const std::vector<SchedulerSetup> setups =
                schedulerSetups();
            const std::size_t n_mix =
                mixes.empty() ? 1 : mixes.size();
            const std::size_t per_mix =
                chunk_list.size() * setups.size();
            const std::size_t per_topo = n_mix * per_mix;
            const std::size_t cells = grid_topos.size() * per_topo;

            // Canonical cell decomposition, topology-major:
            // (topo, mix, chunks, scheduler).
            const auto cellTopo = [&](std::size_t i) {
                return i / per_topo;
            };
            const auto cellMix = [&](std::size_t i) {
                return i % per_topo / per_mix;
            };
            const auto cellChunks = [&](std::size_t i) {
                return chunk_list[i % per_mix / setups.size()];
            };
            const auto cellSched = [&](std::size_t i) {
                return i % setups.size();
            };
            const auto cellKey = [&](std::size_t i) {
                std::vector<std::pair<std::string, std::string>> kv = {
                    {"topo", grid_topos[cellTopo(i)].token},
                    {"sched", setups[cellSched(i)].name},
                    {"chunks", std::to_string(cellChunks(i))},
                    {"enforce", enforce ? "1" : "0"}};
                if (mixes.empty()) {
                    kv.push_back({"type", type_arg});
                    kv.push_back({"size", keyDouble(req.size)});
                } else {
                    // Mix specs contain '=' (reserved in keys), so
                    // the jobs field is a content hash of the mix.
                    kv.push_back(
                        {"jobs",
                         hex16(fnv1a(mixes[cellMix(i)].token.data(),
                                     mixes[cellMix(i)].token.size()))});
                    kv.push_back({"tiers", keyDouble(tier_ratio)});
                }
                return sim::makeResultKey(std::move(kv));
            };

            sim::ShardSpec shard;
            if (!shard_arg.empty())
                shard = sim::parseShardSpec(shard_arg);
            const std::vector<std::size_t> owned =
                sim::shardCells(cells, shard);
            std::unique_ptr<sim::ResultStore> store;
            if (!results_path.empty())
                store =
                    std::make_unique<sim::ResultStore>(results_path);

            std::vector<std::size_t> pending;
            for (std::size_t cell : owned)
                if (store == nullptr || !store->has(cellKey(cell)))
                    pending.push_back(cell);
            const std::size_t resumed = owned.size() - pending.size();
            bool interrupted = false;
            if (max_cells > 0 &&
                pending.size() >
                    static_cast<std::size_t>(max_cells)) {
                pending.resize(static_cast<std::size_t>(max_cells));
                interrupted = true;
            }

            PlanCache cache;
            const double t0 = nowMs();
            const auto fresh = sim::sweepIndexed(
                pending.size(),
                [&](std::size_t j, sim::EventQueue& queue) {
                    const std::size_t i = pending[j];
                    const double c0 = nowMs();
                    CellOutcome out;
                    runtime::RuntimeConfig run_cfg =
                        setups[cellSched(i)].cfg;
                    run_cfg.enforce_consistent_order = enforce;
                    run_cfg.plan_cache = &cache;
                    const Topology& cell_topo =
                        grid_topos[cellTopo(i)].topo;
                    if (mixes.empty()) {
                        CollectiveRequest r = req;
                        r.chunks = cellChunks(i);
                        runtime::CommRuntime comm(queue, cell_topo,
                                                  run_cfg);
                        const int cid = comm.issue(r);
                        queue.run();
                        comm.finalizeStats();
                        out.values = {
                            {"time_ns", comm.record(cid).duration()},
                            {"util", comm.utilization()
                                         .weightedUtilization()}};
                    } else {
                        // One cluster co-simulation per cell, under
                        // the same tiered policy the standalone
                        // cluster mode uses.
                        runtime::RuntimeConfig ccfg = run_cfg;
                        if (ccfg.scheduler == SchedulerKind::Themis &&
                            tier_ratio > 1.0)
                            ccfg.scheduler =
                                SchedulerKind::ThemisPriority;
                        ccfg.priority =
                            PriorityPolicy::tiered(tier_ratio);
                        ccfg.default_chunks = cellChunks(i);
                        cluster::Cluster cl(queue, cell_topo, ccfg,
                                            mixes[cellMix(i)].specs);
                        const auto rep = cl.run();
                        out.values = {
                            {"makespan_ns", rep.makespan},
                            {"fabric_util", rep.fabric_utilization},
                            {"total_bytes", rep.total_bytes}};
                    }
                    out.wall_ms = nowMs() - c0;
                    return out;
                },
                sim::SweepOptions{jobs});
            const double wall_ms = nowMs() - t0;

            // Stream the fresh cells to the journal in canonical cell
            // order (pending is ascending), so independently produced
            // shard journals merge deterministically.
            if (store != nullptr) {
                for (std::size_t j = 0; j < pending.size(); ++j) {
                    sim::ResultRecord rec;
                    rec.key = cellKey(pending[j]);
                    rec.values = fresh[j].values;
                    rec.fingerprint =
                        valuesFingerprint(fresh[j].values);
                    rec.wall_ms = fresh[j].wall_ms;
                    store->append(std::move(rec));
                }
            }

            if (mixes.empty())
                std::printf("%s of %s, %zu-cell grid over %zu "
                            "topologies:\n\n",
                            collectiveTypeName(req.type).c_str(),
                            fmtBytes(req.size).c_str(), cells,
                            grid_topos.size());
            else
                std::printf("%zu-mix cluster grid, %zu cells over "
                            "%zu topologies (policy tiered(%g)):\n\n",
                            mixes.size(), cells, grid_topos.size(),
                            tier_ratio);
            stats::TextTable t(
                mixes.empty()
                    ? std::vector<std::string>{"Topology", "Chunks",
                                               "Scheduler", "Time",
                                               "Avg BW util"}
                    : std::vector<std::string>{"Topology", "Jobs",
                                               "Chunks", "Scheduler",
                                               "Makespan",
                                               "Fabric util"});
            const auto valueOf =
                [](const std::vector<std::pair<std::string, double>>&
                       vals,
                   const char* name) {
                    for (const auto& [n, v] : vals)
                        if (n == name)
                            return v;
                    return 0.0;
                };
            // Cells section for --report: one object per evaluated
            // cell (key + values), built alongside the table.
            stats::telemetry::JsonWriter cellw;
            cellw.beginArray();
            std::size_t jp = 0;
            for (std::size_t cell : owned) {
                const std::vector<std::pair<std::string, double>>*
                    vals = nullptr;
                if (jp < pending.size() && pending[jp] == cell) {
                    vals = &fresh[jp].values;
                    ++jp;
                } else if (store != nullptr) {
                    const auto* rec = store->find(cellKey(cell));
                    if (rec != nullptr)
                        vals = &rec->values;
                }
                if (vals == nullptr)
                    continue; // beyond the --max-cells cap
                if (!report_path.empty()) {
                    cellw.beginObject();
                    cellw.key("key").value(cellKey(cell));
                    cellw.key("values").beginObject();
                    for (const auto& [n, v] : *vals)
                        cellw.key(n).value(v);
                    cellw.endObject();
                    cellw.endObject();
                }
                const std::string topo_name =
                    grid_topos[cellTopo(cell)].topo.name();
                if (mixes.empty()) {
                    t.addRow({topo_name,
                              std::to_string(cellChunks(cell)),
                              setups[cellSched(cell)].name,
                              fmtTime(valueOf(*vals, "time_ns")),
                              fmtPercent(valueOf(*vals, "util"))});
                } else {
                    t.addRow(
                        {topo_name, mixes[cellMix(cell)].token,
                         std::to_string(cellChunks(cell)),
                         setups[cellSched(cell)].name,
                         fmtTime(valueOf(*vals, "makespan_ns")),
                         fmtPercent(valueOf(*vals, "fabric_util"))});
                }
            }
            std::printf("%s", t.render().c_str());
            if (!shard.whole() || store != nullptr) {
                std::printf("\nshard %d/%d: %zu of %zu cells owned, "
                            "%zu resumed from store, %zu simulated%s",
                            shard.index, shard.count, owned.size(),
                            cells, resumed, pending.size(),
                            interrupted
                                ? " (interrupted by --max-cells)"
                                : "");
                if (store != nullptr) {
                    std::printf("; store %s (%zu records%s)",
                                store->path().c_str(), store->size(),
                                store->recoveredTruncatedTail()
                                    ? ", truncated tail recovered"
                                    : "");
                }
                std::printf("\n");
            }
            const auto cache_stats = cache.stats();
            std::printf("\n%.1f ms wall (%.1f cells/sec over %zu "
                        "simulated cells); plan cache %zu plans, "
                        "%llu hits / %llu misses\n",
                        wall_ms,
                        static_cast<double>(pending.size()) /
                            (wall_ms * 1e-3),
                        pending.size(), cache.planCount(),
                        static_cast<unsigned long long>(
                            cache_stats.plan_hits),
                        static_cast<unsigned long long>(
                            cache_stats.plan_misses));
            if (!report_path.empty()) {
                cellw.endArray();
                stats::telemetry::RunReport report("grid");
                if (!grid_arg.empty())
                    report.setInfo("grid", grid_arg);
                else
                    report.setInfo("topology", topo_arg);
                if (!sweep_arg.empty())
                    report.setInfo("sweep", sweep_arg);
                if (!jobs_arg.empty())
                    report.setInfo("jobs", jobs_arg);
                if (!shard_arg.empty())
                    report.setInfo("shard", shard_arg);
                telem.metrics.gauge("grid.cells.total")
                    .set(static_cast<double>(cells));
                telem.metrics.gauge("grid.cells.owned")
                    .set(static_cast<double>(owned.size()));
                telem.metrics.gauge("grid.cells.resumed")
                    .set(static_cast<double>(resumed));
                telem.metrics.gauge("grid.cells.simulated")
                    .set(static_cast<double>(pending.size()));
                report.setNumber("cells",
                                 static_cast<double>(cells));
                report.setNumber("owned",
                                 static_cast<double>(owned.size()));
                report.setNumber("resumed",
                                 static_cast<double>(resumed));
                report.setNumber("simulated", static_cast<double>(
                                                  pending.size()));
                report.setNumber("wall_ms", wall_ms);
                report.setNumber("plan_cache_plans",
                                 static_cast<double>(
                                     cache.planCount()));
                report.setNumber("plan_cache_hits",
                                 static_cast<double>(
                                     cache_stats.plan_hits));
                report.setNumber("plan_cache_misses",
                                 static_cast<double>(
                                     cache_stats.plan_misses));
                report.addSection("cells", cellw.str());
                emitReport(report, report_path, &telem);
            }
            return 0;
        }

        std::printf("%s", topo.describe().c_str());
        for (const auto& pair : classifyAllPairs(topo)) {
            std::printf("  dim%d vs dim%d: %s (ratio %.2f)\n",
                        pair.dim_k + 1, pair.dim_l + 1,
                        provisionScenarioName(pair.scenario).c_str(),
                        pair.ratio);
        }

        sim::EventQueue queue;
        // The runtime attaches telem.trace itself when the config
        // carries the telemetry sink (set above for this mode).
        runtime::CommRuntime comm(queue, topo, cfg);
        const int id = comm.issue(req);
        queue.run();
        comm.finalizeStats();
        emitTrace(trace, trace_path);

        const auto& rec = comm.record(id);
        std::printf("\n%s of %s in %d chunks under %s%s:\n",
                    collectiveTypeName(req.type).c_str(),
                    fmtBytes(req.size).c_str(), chunks,
                    sched_arg == "base" ? "Baseline"
                                        : ("Themis+" + sched_arg).c_str(),
                    enforce ? " (enforced order)" : "");
        std::printf("  time        : %s\n",
                    fmtTime(rec.duration()).c_str());
        std::printf("  avg BW util : %s\n",
                    fmtPercent(comm.utilization().weightedUtilization())
                        .c_str());
        const auto per_dim = comm.utilization().perDimUtilization();
        for (std::size_t d = 0; d < per_dim.size(); ++d)
            std::printf("  dim%zu util  : %s\n", d + 1,
                        fmtPercent(per_dim[d]).c_str());
        const auto model = LatencyModel::fromTopology(topo);
        std::printf("  ideal       : %s (size / total BW)\n",
                    fmtTime(idealCollectiveTime(req.type, req.size,
                                                model))
                        .c_str());
        if (!faults_arg.empty())
            std::printf("\nfault report (--faults \"%s\"):\n%s",
                        faults_arg.c_str(),
                        stats::renderFaultTable(
                            faultRows(topo, comm.utilization()))
                            .c_str());
        if (adapt)
            printAdaptationSummary(comm);

        if (validate) {
            // Re-simulate with every NPU modelled individually; on a
            // symmetric platform the two backends must agree.
            auto sched = makeScheduler(cfg.scheduler, model,
                                       cfg.themis);
            const auto schedules = sched->scheduleCollective(
                req.type,
                schedulableSize(req.type, req.size, model.dimSizes()),
                req.chunks);
            npu::NpuSimConfig npu_cfg;
            npu_cfg.policy = cfg.intra_policy;
            npu_cfg.admission = cfg.admission;
            const auto per_npu = npu::simulatePerNpu(
                topo, req.type, schedules, npu_cfg);
            std::printf("  per-NPU     : %s on %ld NPUs (%s; error "
                        "%.4f%%)\n",
                        fmtTime(per_npu.makespan).c_str(),
                        topo.totalNpus(),
                        per_npu.completed ? "completed" : "DEADLOCK",
                        100.0 *
                            std::abs(per_npu.makespan -
                                     rec.duration()) /
                            rec.duration());
        }
        if (!report_path.empty()) {
            stats::telemetry::RunReport report("single");
            report.setInfo("topology", topo.name());
            report.setInfo("collective",
                           collectiveTypeName(req.type));
            report.setInfo("scheduler",
                           schedulerKindName(cfg.scheduler));
            if (!faults_arg.empty())
                report.setInfo("faults", faults_arg);
            report.setNumber("size_bytes", req.size);
            report.setNumber("chunks", chunks);
            report.setNumber("time_ns", rec.duration());
            report.setNumber(
                "utilization",
                comm.utilization().weightedUtilization());
            report.setNumber("ideal_ns",
                             idealCollectiveTime(req.type, req.size,
                                                 model));
            if (adapt)
                reportAdaptation(report, comm);
            if (!faults_arg.empty())
                report.addSection("fault",
                                  faultJson(faultRows(
                                      topo, comm.utilization())));
            emitReport(report, report_path, &telem);
        }
        return 0;
    } catch (const runtime::RetryExhaustedError& e) {
        // A transfer ran out of retry budget: surface the structured
        // report as a readable diagnostic and exit distinctly so
        // scripts can tell "fabric gave up" from a config mistake.
        const auto& r = e.report();
        std::fprintf(stderr,
                     "fatal: retry budget exhausted on dim%d "
                     "(collective %d chunk %d stage %d, %d attempts, "
                     "%s re-sent); raise retry max attempts or "
                     "shorten the fault windows\n",
                     r.dim + 1, r.op.collective_id, r.op.chunk_id,
                     r.op.stage_index, r.attempts,
                     fmtBytes(r.lost_bytes).c_str());
        // With telemetry armed, replay the flight-recorder tail —
        // the last events leading into the exhaustion — and persist
        // the partial artifacts for post-mortem.
        const auto events = telem.recorder.events();
        if (!events.empty()) {
            const std::size_t tail =
                std::min<std::size_t>(events.size(), 16);
            std::fprintf(
                stderr,
                "flight recorder (last %zu of %llu event(s)):\n",
                tail,
                static_cast<unsigned long long>(
                    telem.recorder.totalRecorded()));
            for (std::size_t i = events.size() - tail;
                 i < events.size(); ++i)
                std::fprintf(stderr, "  %s\n",
                             stats::telemetry::describeFlightEvent(
                                 events[i])
                                 .c_str());
        }
        if (!trace_path.empty()) {
            trace.writeFile(trace_path);
            std::fprintf(stderr, "trace (partial): %s\n",
                         trace_path.c_str());
        }
        if (!report_path.empty()) {
            stats::telemetry::RunReport report("fatal");
            report.setInfo("error", "retry budget exhausted");
            report.setNumber("dim", r.dim);
            report.setNumber("attempts", r.attempts);
            report.setNumber("lost_bytes", r.lost_bytes);
            report.setNumber("collective", r.op.collective_id);
            report.setNumber("chunk", r.op.chunk_id);
            report.setNumber("stage", r.op.stage_index);
            report.attachMetrics(&telem.metrics);
            report.attachRecorder(&telem.recorder);
            report.writeFile(report_path);
            std::fprintf(stderr, "report (mode fatal): %s\n",
                         report_path.c_str());
        }
        return 2;
    } catch (const ConfigError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
