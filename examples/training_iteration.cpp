/**
 * @file
 * End-to-end training simulation: run iterations of one of the
 * paper's workloads on one of the Table 2 platforms and print the
 * Fig 12-style time decomposition.
 *
 * Usage:
 *   training_iteration [workload] [topology] [iterations]
 *   e.g. training_iteration GNMT 3D-SW_SW_SW_homo 3
 */

#include <cstdio>
#include <cstdlib>

#include "common/string_util.hpp"
#include "models/model_zoo.hpp"
#include "stats/summary.hpp"
#include "topology/presets.hpp"
#include "workload/training_loop.hpp"

using namespace themis;

int
main(int argc, char** argv)
{
    const std::string workload = argc > 1 ? argv[1] : "GNMT";
    const std::string topo_name =
        argc > 2 ? argv[2] : "3D-SW_SW_SW_homo";
    const int iterations = argc > 3 ? std::atoi(argv[3]) : 3;

    const Topology topo = presets::byName(topo_name);
    const auto model = models::byName(workload);
    std::printf("Workload: %s\n", model.describe().c_str());
    std::printf("Platform: %s (%s, %ld NPUs), %d iteration(s)\n\n",
                topo.name().c_str(), topo.sizeString().c_str(),
                topo.totalNpus(), iterations);

    stats::TextTable t({"Scheduler", "Fwd compute", "Bwd compute",
                        "Exposed MP", "Exposed DP", "Total",
                        "Avg BW util"});
    TimeNs baseline_total = 0.0;
    for (const auto& cfg : {runtime::baselineConfig(),
                           runtime::themisScfConfig()}) {
        sim::EventQueue queue;
        runtime::CommRuntime comm(queue, topo, cfg);
        workload::TrainingLoop loop(comm, model);
        const auto sum = loop.run(iterations);
        comm.finalizeStats();
        if (cfg.scheduler == SchedulerKind::Baseline)
            baseline_total = sum.total;
        t.addRow({schedulerKindName(cfg.scheduler),
                  fmtTime(sum.fwd_compute), fmtTime(sum.bwd_compute),
                  fmtTime(sum.exposed_mp), fmtTime(sum.exposed_dp),
                  fmtTime(sum.total),
                  fmtPercent(
                      comm.utilization().weightedUtilization())});
        if (cfg.scheduler == SchedulerKind::Themis) {
            std::printf("%s", t.render().c_str());
            std::printf("\nThemis speedup over baseline: %.2fx\n",
                        baseline_total / sum.total);
        }
    }
    return 0;
}
