/**
 * @file
 * Data-plane demonstration of the paper's Observation 1: any order of
 * Reduce-Scatter stages followed by any order of All-Gather stages is
 * a correct All-Reduce — the freedom Themis exploits.
 *
 * Runs a chunked All-Reduce on a small 4x2x4 machine with *real*
 * per-NPU buffers: each chunk takes the schedule Themis assigned it,
 * data moves through ring/halving-doubling/direct exchanges, and the
 * result is verified element by element. Also prints the consistency
 * planner's enforced per-dimension orders (Sec 4.6).
 */

#include <cstdio>

#include "collective/dataplane/dataplane_collectives.hpp"
#include "common/string_util.hpp"
#include "core/consistency_planner.hpp"
#include "core/themis_scheduler.hpp"

using namespace themis;

int
main()
{
    // A small heterogeneous machine: ring x switch x clique.
    const std::vector<int> sizes{4, 2, 4};
    const std::vector<DimKind> kinds{DimKind::Ring, DimKind::Switch,
                                     DimKind::FullyConnected};
    LogicalMachine machine(sizes);

    // A latency model for the same shape (bandwidths arbitrary but
    // heterogeneous so Themis produces distinct chunk schedules).
    std::vector<DimensionConfig> dims(3);
    const double bws[3] = {800.0, 400.0, 200.0};
    for (int d = 0; d < 3; ++d) {
        dims[static_cast<std::size_t>(d)].kind =
            kinds[static_cast<std::size_t>(d)];
        dims[static_cast<std::size_t>(d)].size =
            sizes[static_cast<std::size_t>(d)];
        dims[static_cast<std::size_t>(d)].link_bw_gbps =
            bws[static_cast<std::size_t>(d)];
        dims[static_cast<std::size_t>(d)].links_per_npu =
            kinds[static_cast<std::size_t>(d)] ==
                    DimKind::FullyConnected
                ? sizes[static_cast<std::size_t>(d)] - 1
                : 1;
        dims[static_cast<std::size_t>(d)].step_latency_ns = 500.0;
    }
    const LatencyModel model(dims);

    // Themis schedules for a 4-chunk All-Reduce.
    ThemisScheduler scheduler(model);
    const auto schedules =
        scheduler.scheduleCollective(CollectiveType::AllReduce,
                                     4096.0, 4);
    std::printf("Themis chunk schedules (32 NPUs, 4x2x4):\n");
    for (const auto& sched : schedules)
        std::printf("  %s\n", describeSchedule(sched).c_str());

    // Execute every chunk on real data (independent element spaces).
    const auto seed = [](int npu, std::int64_t off) {
        return static_cast<DataValue>(npu) * 1000003 + off;
    };
    bool all_ok = true;
    for (const auto& sched : schedules) {
        std::vector<int> rs_order, ag_order;
        for (const auto& st : sched.stages) {
            if (st.phase == Phase::ReduceScatter)
                rs_order.push_back(st.dim);
            else
                ag_order.push_back(st.dim);
        }
        DataPlane dp(machine, kinds, machine.numNpus() * 4);
        dp.initFullReplicas(seed);
        dp.runAllReduce(rs_order, ag_order);
        const bool ok = dp.verifyAllReduced(seed);
        all_ok = all_ok && ok;
        std::printf("  chunk %d: data-plane All-Reduce %s\n",
                    sched.chunk_id, ok ? "correct" : "WRONG");
    }

    // Consistency plan: the per-dimension op order every NPU enforces.
    ConsistencyPlanner planner(model, IntraDimPolicy::Scf);
    const auto plan = planner.plan(schedules);
    std::printf("\nEnforced per-dimension start orders (Sec 4.6):\n");
    for (std::size_t d = 0; d < plan.order.size(); ++d) {
        std::printf("  dim%zu:", d + 1);
        for (const auto& op : plan.order[d])
            std::printf(" c%d.s%d", op.chunk_id, op.stage_index);
        std::printf("\n");
    }
    std::printf("Deadlock-free: %s\n",
                planIsDeadlockFree(schedules, plan) ? "yes" : "NO");
    return all_ok ? 0 : 1;
}
