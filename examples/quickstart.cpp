/**
 * @file
 * Quickstart: simulate one 256 MB All-Reduce on a next-gen platform
 * with baseline scheduling and with Themis, and print what the
 * scheduler changed.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "common/string_util.hpp"
#include "core/ideal_estimator.hpp"
#include "runtime/comm_runtime.hpp"
#include "topology/presets.hpp"

using namespace themis;

int
main()
{
    // 1) Pick a platform (Table 2 preset, or build your own
    //    Topology from DimensionConfigs).
    const Topology topo = presets::make3DSwSwSwHomo();
    std::printf("Platform:\n%s\n", topo.describe().c_str());

    // 2) Describe the collective.
    CollectiveRequest request;
    request.type = CollectiveType::AllReduce;
    request.size = 256.0e6; // bytes per NPU
    request.chunks = 64;    // the paper's default CPC

    // 3) Simulate under both schedulers.
    for (const auto& cfg : {runtime::baselineConfig(),
                           runtime::themisScfConfig()}) {
        sim::EventQueue queue;
        runtime::CommRuntime comm(queue, topo, cfg);
        const int id = comm.issue(request);
        queue.run();
        comm.finalizeStats();

        const auto& rec = comm.record(id);
        std::printf("%-12s %s  (avg BW utilization %s",
                    schedulerKindName(cfg.scheduler).c_str(),
                    fmtTime(rec.duration()).c_str(),
                    fmtPercent(comm.utilization().weightedUtilization())
                        .c_str());
        const auto per_dim = comm.utilization().perDimUtilization();
        for (std::size_t d = 0; d < per_dim.size(); ++d)
            std::printf("%s dim%zu %s", d == 0 ? ";" : ",", d + 1,
                        fmtPercent(per_dim[d]).c_str());
        std::printf(")\n");
    }

    // 4) Compare against the Ideal lower estimate (Table 3).
    const auto model = LatencyModel::fromTopology(topo);
    std::printf("%-12s %s  (collective size x2 / total BW)\n", "Ideal",
                fmtTime(idealCollectiveTime(CollectiveType::AllReduce,
                                            request.size, model))
                    .c_str());
    return 0;
}
