/**
 * @file
 * Network design-space exploration (the Sec 6.3 workflow): given a
 * fixed total bandwidth budget per NPU, how should a system architect
 * split it across the dimensions of a 3D platform?
 *
 * With baseline scheduling only the "Just Enough" split
 * (BW proportional to accumulated size products) avoids waste; with
 * Themis, any non-under-provisioned split performs — the scheduler
 * frees the architect to optimize for cost/cabling instead.
 */

#include <cstdio>

#include "common/string_util.hpp"
#include "runtime/comm_runtime.hpp"
#include "stats/summary.hpp"
#include "topology/provisioning.hpp"

using namespace themis;

namespace {

/** 16x8x8 switch platform with a given per-dim BW split (Gb/s). */
Topology
makeSplit(double bw1, double bw2, double bw3)
{
    auto sw = [](int size, double gbps, TimeNs lat) {
        DimensionConfig d;
        d.kind = DimKind::Switch;
        d.size = size;
        d.link_bw_gbps = gbps;
        d.links_per_npu = 1;
        d.step_latency_ns = lat;
        return d;
    };
    return Topology("split", {sw(16, bw1, 700.0), sw(8, bw2, 700.0),
                              sw(8, bw3, 1700.0)});
}

TimeNs
allReduceTime(const Topology& topo, const runtime::RuntimeConfig& cfg)
{
    sim::EventQueue queue;
    runtime::CommRuntime comm(queue, topo, cfg);
    CollectiveRequest req;
    req.type = CollectiveType::AllReduce;
    req.size = 1.0e9;
    req.chunks = 64;
    const int id = comm.issue(req);
    queue.run();
    return comm.record(id).duration();
}

} // namespace

int
main()
{
    // 2400 Gb/s per NPU to distribute over a 16x8x8 platform. The
    // "just enough" split scales BW by the accumulated size products
    // *and* the per-dimension (P-1)/P wire-volume factors, so every
    // pipeline stage takes exactly equal time (without the volume
    // correction the loads drift and the greedy scheduler would
    // needlessly reroute a chunk; see DESIGN.md).
    struct Split
    {
        const char* label;
        double bw[3];
    };
    const Split splits[] = {
        {"baseline-friendly (just enough)", {2237.2, 130.5, 16.3}},
        {"skewed to dim1", {1800.0, 400.0, 200.0}},
        {"uniform", {800.0, 800.0, 800.0}},
        {"skewed to outer dims", {400.0, 800.0, 1200.0}},
        {"NIC-heavy", {600.0, 600.0, 1200.0}},
    };

    std::printf("Distributing 2400 Gb/s per NPU over 16x8x8 "
                "(1 GB All-Reduce)\n\n");
    stats::TextTable t({"Split (Gb/s)", "Scenario vs dim1",
                        "Baseline", "Themis+SCF", "Themis gain"});
    for (const auto& s : splits) {
        const Topology topo = makeSplit(s.bw[0], s.bw[1], s.bw[2]);
        // Worst pairwise classification against dim1. The 8% slack
        // covers the (P-1)/P wire-volume correction, which the
        // paper's raw BW-ratio formula does not include.
        std::string scenario = "Just-Enough";
        for (const auto& p : classifyAllPairs(topo, 0.08)) {
            if (p.scenario == ProvisionScenario::UnderProvisioned)
                scenario = "Under-Provisioned";
            else if (p.scenario == ProvisionScenario::OverProvisioned &&
                     scenario == "Just-Enough")
                scenario = "Over-Provisioned";
        }
        const TimeNs base =
            allReduceTime(topo, runtime::baselineConfig());
        const TimeNs scf =
            allReduceTime(topo, runtime::themisScfConfig());
        t.addRow({std::string(s.label) + " (" +
                      fmtDouble(s.bw[0], 0) + "/" +
                      fmtDouble(s.bw[1], 0) + "/" +
                      fmtDouble(s.bw[2], 0) + ")",
                  scenario, fmtTime(base), fmtTime(scf),
                  fmtDouble(base / scf, 2) + "x"});
    }
    std::printf("%s", t.render().c_str());
    std::printf(
        "\nTakeaway (Sec 6.3): with the baseline scheduler only the "
        "first split avoids\nwaste, but it starves the outer "
        "dimensions for every other traffic pattern.\nWith Themis the "
        "architect may pick any split without an under-provisioned\n"
        "pair and still get full utilization.\n");
    return 0;
}
